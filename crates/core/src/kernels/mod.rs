//! Runtime-dispatched SIMD kernels for the two query-path hot loops:
//! the `m×d` projection behind hashing and the bounded squared-distance
//! behind candidate verification.
//!
//! ## Dispatch model
//!
//! A [`Kernel`] names one ISA implementation; [`KernelDispatch`] wraps a
//! validated choice and exposes the kernel entry points. The process
//! picks its kernel **once**: [`dispatch`] lazily initializes a global
//! from runtime CPU feature detection (`is_x86_feature_detected!`),
//! honoring `CC_FORCE_SCALAR=1`, and [`init`] lets binaries with a
//! `--kernel` flag pin an explicit choice before first use. Every path
//! is independently testable because all entry points also exist on
//! explicit [`KernelDispatch`] values — the equivalence proptests run
//! every available kernel against the scalar oracle in one process.
//!
//! ## Bit-identity contract
//!
//! For a given input, every kernel returns **bit-identical** results:
//!
//! * distance: same value as [`cc_vector::dist::euclidean_sq`], and for
//!   the bounded variant the same `Some`/`None` abandon decision at the
//!   same [`bound check boundaries`](KernelDispatch::bound_check_dims);
//! * projection: same value as [`scalar::dot`], the canonical lane-
//!   parallel schedule (which this module *defines* — the old
//!   sequential-`f64` `cc_vector::dist::dot` cannot be reproduced by a
//!   lane-parallel kernel, so hashing now funnels through this one).
//!
//! Kernel choice therefore never affects results, only speed: an index
//! built under AVX2 answers queries hashed under `CC_FORCE_SCALAR=1`
//! identically, sharded and service paths included.
//!
//! ## Safety
//!
//! This module (its `x86`/`neon` submodules and the AVX2 call sites
//! below) is the only code in the crate allowed to use `unsafe` — the
//! crate-level lint is `deny(unsafe_code)` with narrow `allow`s here.
//! The obligations are (a) SIMD loads stay in bounds, guaranteed by
//! slice-length arithmetic at each load, and (b) AVX2 functions are only
//! entered after `is_x86_feature_detected!("avx2")` succeeded, which
//! [`KernelDispatch::new`] establishes and the dispatch methods rely on.

pub mod scalar;

#[cfg(target_arch = "aarch64")]
mod neon;
#[cfg(target_arch = "x86_64")]
mod x86;

use cc_vector::dataset::Dataset;
use std::sync::OnceLock;

/// One ISA implementation of the kernel pair. All variants exist on
/// every architecture (so kernel names parse anywhere — a bench report
/// from an aarch64 box is readable on x86), but only some are
/// [`available`](Kernel::available) at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// The portable reference path ([`cc_vector::dist`] + [`scalar`]).
    Scalar,
    /// x86-64 SSE2 (baseline — always available on x86-64).
    Sse2,
    /// x86-64 AVX2 (runtime-detected).
    Avx2,
    /// aarch64 NEON (baseline — always available on aarch64).
    Neon,
}

impl Kernel {
    /// Stable lowercase name (CLI flags, bench reports, Prometheus).
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Sse2 => "sse2",
            Kernel::Avx2 => "avx2",
            Kernel::Neon => "neon",
        }
    }

    /// Parse a CLI/ENV kernel name; `auto` means "detect the best".
    pub fn parse(s: &str) -> Result<Option<Kernel>, String> {
        match s {
            "auto" => Ok(None),
            "scalar" => Ok(Some(Kernel::Scalar)),
            "sse2" => Ok(Some(Kernel::Sse2)),
            "avx2" => Ok(Some(Kernel::Avx2)),
            "neon" => Ok(Some(Kernel::Neon)),
            other => {
                Err(format!("unknown kernel '{other}' (expected auto, scalar, sse2, avx2 or neon)"))
            }
        }
    }

    /// Whether this kernel can run on the current machine.
    pub fn available(self) -> bool {
        match self {
            Kernel::Scalar => true,
            Kernel::Sse2 => cfg!(target_arch = "x86_64"),
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            Kernel::Avx2 => false,
            Kernel::Neon => cfg!(target_arch = "aarch64"),
        }
    }

    /// The best kernel the current machine supports.
    pub fn detect() -> Kernel {
        if Kernel::Avx2.available() {
            Kernel::Avx2
        } else if Kernel::Sse2.available() {
            Kernel::Sse2
        } else if Kernel::Neon.available() {
            Kernel::Neon
        } else {
            Kernel::Scalar
        }
    }

    /// Every kernel available on this machine (scalar first) — the
    /// iteration set of the equivalence tests and the bench sweep.
    pub fn all_available() -> Vec<Kernel> {
        [Kernel::Scalar, Kernel::Sse2, Kernel::Avx2, Kernel::Neon]
            .into_iter()
            .filter(|k| k.available())
            .collect()
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A validated kernel choice; construction proves availability, so the
/// dispatch methods may enter `#[target_feature]` code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelDispatch {
    kernel: Kernel,
}

impl KernelDispatch {
    /// Wrap `kernel`, verifying it can run on this machine.
    pub fn new(kernel: Kernel) -> Result<Self, String> {
        if kernel.available() {
            Ok(Self { kernel })
        } else {
            Err(format!("kernel '{}' is not available on this machine", kernel.name()))
        }
    }

    /// The selected kernel.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Dimensions between early-abandon bound checks, derived from the
    /// kernel's accumulator lane count. Every dispatchable kernel keeps
    /// [`cc_vector::dist::LANES`] f32 lanes and checks every
    /// [`cc_vector::dist::CHECK_CHUNKS`] chunks, so the boundaries — and
    /// with them the abandon-rate statistics — are identical across
    /// kernels.
    pub fn bound_check_dims(&self) -> usize {
        cc_vector::dist::LANES * cc_vector::dist::CHECK_CHUNKS
    }

    /// Early-abandoning squared Euclidean distance; contract identical
    /// to [`cc_vector::dist::euclidean_sq_bounded`], results
    /// bit-identical across kernels.
    ///
    /// # Panics
    /// Panics when the slices disagree on length.
    #[inline]
    #[allow(unsafe_code)]
    pub fn euclidean_sq_bounded(&self, a: &[f32], b: &[f32], bound: f64) -> Option<f64> {
        match self.kernel {
            Kernel::Scalar => cc_vector::dist::euclidean_sq_bounded(a, b, bound),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: SSE2 is part of the x86-64 baseline, so the
            // feature is unconditionally present.
            Kernel::Sse2 => unsafe { x86::sq_sse2::<true>(a, b, bound) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `KernelDispatch::new` only admits Avx2 after
            // `is_x86_feature_detected!("avx2")` succeeded.
            Kernel::Avx2 => unsafe { x86::sq_avx2::<true>(a, b, bound) },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: NEON is part of the aarch64 baseline, so the
            // feature is unconditionally present.
            Kernel::Neon => unsafe { neon::sq_neon::<true>(a, b, bound) },
            #[allow(unreachable_patterns)]
            _ => unreachable!("kernel {:?} unavailable on this architecture", self.kernel),
        }
    }

    /// Unbounded squared Euclidean distance, bit-identical to
    /// [`cc_vector::dist::euclidean_sq`].
    ///
    /// # Panics
    /// Panics when the slices disagree on length.
    #[inline]
    #[allow(unsafe_code)]
    pub fn euclidean_sq(&self, a: &[f32], b: &[f32]) -> f64 {
        let v = match self.kernel {
            Kernel::Scalar => Some(cc_vector::dist::euclidean_sq(a, b)),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: SSE2 is part of the x86-64 baseline, so the
            // feature is unconditionally present.
            Kernel::Sse2 => unsafe { x86::sq_sse2::<false>(a, b, f64::INFINITY) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `KernelDispatch::new` only admits Avx2 after
            // `is_x86_feature_detected!("avx2")` succeeded.
            Kernel::Avx2 => unsafe { x86::sq_avx2::<false>(a, b, f64::INFINITY) },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: NEON is part of the aarch64 baseline, so the
            // feature is unconditionally present.
            Kernel::Neon => unsafe { neon::sq_neon::<false>(a, b, f64::INFINITY) },
            #[allow(unreachable_patterns)]
            _ => unreachable!("kernel {:?} unavailable on this architecture", self.kernel),
        };
        match v {
            Some(v) => v,
            None => unreachable!("unbounded kernel cannot abandon"),
        }
    }

    /// Projection dot product `Σ a[i]·q[i]` under the canonical
    /// lane-parallel schedule ([`scalar::dot`]), bit-identical across
    /// kernels.
    ///
    /// # Panics
    /// Panics when the slices disagree on length.
    #[inline]
    #[allow(unsafe_code)]
    pub fn dot(&self, a: &[f32], q: &[f32]) -> f64 {
        match self.kernel {
            Kernel::Scalar => scalar::dot(a, q),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: SSE2 is part of the x86-64 baseline, so the
            // feature is unconditionally present.
            Kernel::Sse2 => unsafe { x86::dot_sse2(a, q) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `KernelDispatch::new` only admits Avx2 after
            // `is_x86_feature_detected!("avx2")` succeeded.
            Kernel::Avx2 => unsafe { x86::dot_avx2(a, q) },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: NEON is part of the aarch64 baseline, so the
            // feature is unconditionally present.
            Kernel::Neon => unsafe { neon::dot_neon(a, q) },
            #[allow(unreachable_patterns)]
            _ => unreachable!("kernel {:?} unavailable on this architecture", self.kernel),
        }
    }

    /// Project one vector through a whole hash family: `out[t] =
    /// rows[t]·q + offsets[t]` over the packed row-major `m×d` matrix.
    ///
    /// # Panics
    /// Panics when the buffer shapes disagree.
    pub fn project_family(
        &self,
        matrix: &[f32],
        d: usize,
        q: &[f32],
        offsets: &[f64],
        out: &mut [f64],
    ) {
        let m = offsets.len();
        assert_eq!(matrix.len(), m * d, "matrix shape mismatch");
        assert_eq!(q.len(), d, "query dimensionality mismatch");
        assert_eq!(out.len(), m, "output length mismatch");
        for t in 0..m {
            out[t] = self.dot(&matrix[t * d..(t + 1) * d], q) + offsets[t];
        }
    }

    /// Batched projection: hash a whole coalesced query batch against
    /// the `m×d` matrix at once, `out[qi*m + t] = rows[t]·q_qi +
    /// offsets[t]`. Queries are processed in blocks of
    /// [`PROJECT_QUERY_BLOCK`] with the row loop outside the block —
    /// each matrix row is read once per block instead of once per
    /// query, which is where batch coalescing pays. Per-query results
    /// are bit-identical to [`KernelDispatch::project_family`] (the
    /// per-row dot is pure; blocking only reorders independent rows).
    ///
    /// # Panics
    /// Panics when the buffer shapes disagree.
    pub fn project_batch(
        &self,
        matrix: &[f32],
        d: usize,
        queries: &Dataset,
        offsets: &[f64],
        out: &mut [f64],
    ) {
        let m = offsets.len();
        let nq = queries.len();
        assert_eq!(matrix.len(), m * d, "matrix shape mismatch");
        assert_eq!(queries.dim(), d, "query dimensionality mismatch");
        assert_eq!(out.len(), m * nq, "output length mismatch");
        let mut q_base = 0usize;
        while q_base < nq {
            let q_end = (q_base + PROJECT_QUERY_BLOCK).min(nq);
            for t in 0..m {
                let row = &matrix[t * d..(t + 1) * d];
                let off = offsets[t];
                for qi in q_base..q_end {
                    out[qi * m + t] = self.dot(row, queries.get(qi)) + off;
                }
            }
            q_base = q_end;
        }
    }
}

/// Queries per block of the batched projection (sized so a block of
/// query rows stays L1-resident while the matrix streams through once).
pub const PROJECT_QUERY_BLOCK: usize = 8;

/// Hint the CPU to pull `slice[i]`'s cache line toward L1 (out-of-bounds
/// indices are ignored; a no-op on architectures without a stable
/// prefetch intrinsic). The counting loop issues this a few entries
/// ahead of its random-access counter updates so the line arrives
/// before the increment needs it. Purely a performance hint — prefetch
/// cannot fault and has no architectural effect.
#[inline]
#[allow(unsafe_code)]
pub fn prefetch_read_u64(slice: &[u64], i: usize) {
    if let Some(word) = slice.get(i) {
        #[cfg(target_arch = "x86_64")]
        {
            #[target_feature(enable = "sse")]
            #[inline]
            fn hint(p: *const i8) {
                // PREFETCHT0 is a hint with no architectural effect; it
                // cannot fault on any address, and inside this
                // `target_feature(sse)` context the intrinsic call is
                // safe.
                core::arch::x86_64::_mm_prefetch(p, core::arch::x86_64::_MM_HINT_T0);
            }
            // SAFETY: SSE is part of the x86-64 baseline.
            unsafe { hint(word as *const u64 as *const i8) };
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = word;
        }
    }
}

static GLOBAL: OnceLock<KernelDispatch> = OnceLock::new();

/// The kernel [`dispatch`] falls back to: scalar under
/// `CC_FORCE_SCALAR=1`, otherwise the best detected ISA.
pub fn default_kernel() -> Kernel {
    if std::env::var("CC_FORCE_SCALAR").map(|v| v == "1").unwrap_or(false) {
        Kernel::Scalar
    } else {
        Kernel::detect()
    }
}

/// The process-wide kernel dispatch, chosen once at first use (from
/// [`init`] if a binary pinned a kernel, else [`default_kernel`]).
pub fn dispatch() -> &'static KernelDispatch {
    GLOBAL.get_or_init(|| {
        KernelDispatch::new(default_kernel()).expect("default kernel is always available")
    })
}

/// Pin the process-wide kernel explicitly (the `--kernel` flag). Must
/// run before anything hashes or verifies; errors when the kernel is
/// unavailable on this machine or a different kernel was already
/// selected.
pub fn init(kernel: Kernel) -> Result<&'static KernelDispatch, String> {
    let d = KernelDispatch::new(kernel)?;
    let got = GLOBAL.get_or_init(|| d);
    if got.kernel() != kernel {
        return Err(format!(
            "kernel already selected as '{}'; cannot re-select '{}'",
            got.kernel().name(),
            kernel.name()
        ));
    }
    Ok(got)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(d: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
        // Deterministic pseudo-random data without a rand dependency.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u32 << 24) as f32 - 0.5
        };
        let a = (0..d).map(|_| next()).collect();
        let b = (0..d).map(|_| next()).collect();
        (a, b)
    }

    #[test]
    fn kernels_every_available_distance_matches_scalar_bitwise() {
        for kernel in Kernel::all_available() {
            let kd = KernelDispatch::new(kernel).unwrap();
            for d in [1usize, 7, 8, 9, 63, 64, 65, 128, 200, 511] {
                let (a, b) = vecs(d, 0x9E37 + d as u64);
                let exact = cc_vector::dist::euclidean_sq(&a, &b);
                assert_eq!(kd.euclidean_sq(&a, &b).to_bits(), exact.to_bits(), "{kernel} d={d}");
                let v = kd.euclidean_sq_bounded(&a, &b, f64::INFINITY).unwrap();
                assert_eq!(v.to_bits(), exact.to_bits(), "{kernel} bounded d={d}");
                // Same abandon decision as the scalar oracle at a mid
                // bound.
                let mid = exact * 0.5;
                let scalar = cc_vector::dist::euclidean_sq_bounded(&a, &b, mid);
                assert_eq!(
                    kd.euclidean_sq_bounded(&a, &b, mid).map(f64::to_bits),
                    scalar.map(f64::to_bits),
                    "{kernel} abandon d={d}"
                );
            }
        }
    }

    #[test]
    fn kernels_every_available_projection_matches_scalar_bitwise() {
        for kernel in Kernel::all_available() {
            let kd = KernelDispatch::new(kernel).unwrap();
            for d in [1usize, 4, 7, 8, 9, 16, 127, 128, 129, 512] {
                let (a, q) = vecs(d, 0x51D7 + d as u64);
                let exact = scalar::dot(&a, &q);
                assert_eq!(kd.dot(&a, &q).to_bits(), exact.to_bits(), "{kernel} d={d}");
            }
        }
    }

    #[test]
    fn kernels_batched_projection_matches_single_bitwise() {
        use cc_vector::gen::{generate, Distribution};
        let d = 24;
        let m = 9;
        let queries = generate(
            Distribution::GaussianMixture { clusters: 3, spread: 0.1, scale: 2.0 },
            21,
            d,
            5,
        );
        let (matrix, _) = vecs(m * d, 77);
        let offsets: Vec<f64> = (0..m).map(|t| t as f64 * 0.37).collect();
        for kernel in Kernel::all_available() {
            let kd = KernelDispatch::new(kernel).unwrap();
            let mut batched = vec![0.0f64; m * queries.len()];
            kd.project_batch(&matrix, d, &queries, &offsets, &mut batched);
            let mut single = vec![0.0f64; m];
            for qi in 0..queries.len() {
                kd.project_family(&matrix, d, queries.get(qi), &offsets, &mut single);
                for t in 0..m {
                    assert_eq!(
                        batched[qi * m + t].to_bits(),
                        single[t].to_bits(),
                        "{kernel} q={qi} t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn kernels_detection_and_parsing() {
        assert!(Kernel::Scalar.available());
        assert!(Kernel::detect().available());
        assert!(Kernel::all_available().contains(&Kernel::Scalar));
        assert_eq!(Kernel::parse("auto").unwrap(), None);
        assert_eq!(Kernel::parse("scalar").unwrap(), Some(Kernel::Scalar));
        assert_eq!(Kernel::parse("avx2").unwrap(), Some(Kernel::Avx2));
        assert!(Kernel::parse("avx512").is_err());
        assert_eq!(Kernel::Neon.name(), "neon");
    }

    #[test]
    fn kernels_dispatch_is_available_and_stable() {
        let a = dispatch();
        let b = dispatch();
        assert_eq!(a.kernel(), b.kernel());
        assert!(a.kernel().available());
        assert_eq!(a.bound_check_dims(), cc_vector::dist::BOUND_CHECK_DIMS);
    }

    #[test]
    fn kernels_unavailable_kernel_rejected() {
        // At most one of these is available on any single architecture.
        let impossible = if cfg!(target_arch = "x86_64") { Kernel::Neon } else { Kernel::Avx2 };
        assert!(KernelDispatch::new(impossible).is_err());
    }
}

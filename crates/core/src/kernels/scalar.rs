//! Scalar reference kernels — the oracle every SIMD path must match
//! bit-for-bit.
//!
//! The squared-distance reference lives in [`cc_vector::dist`] (it
//! predates this module and every baseline shares it); this file adds
//! the canonical **projection** schedule. The old `cc_vector::dist::dot`
//! summed `a[i]·q[i]` sequentially in `f64` — one long dependency chain
//! that neither auto-vectorizes nor can be reproduced by a lane-parallel
//! kernel without changing results. The canonical schedule is therefore
//! defined lane-parallel from the start:
//!
//! * [`PROJ_LANES`] = 8 independent `f64` accumulators; lane `j`
//!   accumulates elements `j, j+8, j+16, …` (each product is computed in
//!   `f64`, exact for `f32` inputs).
//! * The combine pairs lane `j` with lane `j+4` first — exactly the two
//!   4-wide AVX2 registers (four 2-wide SSE2/NEON registers) the SIMD
//!   kernels keep the lanes in — then folds `(s0+s2)+(s1+s3)`.
//! * Elements past the lane-chunked region accumulate sequentially into
//!   a separate `tail` added last.
//!
//! Every ISA path reproduces these exact operations in the same order,
//! so scalar and SIMD projections (and hence bucket ids) are
//! bit-identical — which matters because an index built under one
//! kernel must answer queries hashed under another
//! (`CC_FORCE_SCALAR=1` against a default-built index, for instance).

/// Independent `f64` accumulator lanes of the projection kernel.
pub const PROJ_LANES: usize = 8;

/// Combine the eight projection accumulators. Pairing `j` with `j+4`
/// reduces the two 4-wide registers with one packed add; the remaining
/// folds follow the same `(s0+s2)+(s1+s3)` shape as the distance
/// kernel's combine.
#[inline(always)]
pub(crate) fn combine(acc: [f64; PROJ_LANES]) -> f64 {
    ((acc[0] + acc[4]) + (acc[2] + acc[6])) + ((acc[1] + acc[5]) + (acc[3] + acc[7]))
}

/// Canonical projection dot product `Σ a[i]·q[i]` in `f64`.
pub fn dot(a: &[f32], q: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), q.len());
    let split = a.len() - a.len() % PROJ_LANES;
    let mut acc = [0.0f64; PROJ_LANES];
    for (ca, cq) in a[..split].chunks_exact(PROJ_LANES).zip(q[..split].chunks_exact(PROJ_LANES)) {
        for j in 0..PROJ_LANES {
            acc[j] += f64::from(ca[j]) * f64::from(cq[j]);
        }
    }
    let mut tail = 0.0f64;
    for (x, y) in a[split..].iter().zip(&q[split..]) {
        tail += f64::from(*x) * f64::from(*y);
    }
    combine(acc) + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_scalar_dot_matches_naive_within_rounding() {
        for d in [1usize, 3, 7, 8, 9, 16, 100, 128, 513] {
            let a: Vec<f32> = (0..d).map(|i| (i as f32).sin()).collect();
            let q: Vec<f32> = (0..d).map(|i| (i as f32 * 0.7).cos()).collect();
            let naive: f64 = a.iter().zip(&q).map(|(&x, &y)| f64::from(x) * f64::from(y)).sum();
            let got = dot(&a, &q);
            assert!((naive - got).abs() <= 1e-10 * (1.0 + naive.abs()), "dim {d}");
        }
    }

    #[test]
    fn kernels_scalar_dot_empty_and_short() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(dot(&[2.0], &[3.0]), 6.0);
        assert_eq!(dot(&[1.0; 8], &[1.0; 8]), 8.0);
    }
}

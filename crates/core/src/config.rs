//! Configuration of a C2LSH index.
//!
//! The scheme's public knobs are deliberately few — that is one of the
//! paper's selling points. Everything else (`m`, `l`, `α`) is *derived*
//! from these plus the dataset size (see [`crate::params`]).

use crate::error::C2lshError;

/// False-positive budget: the number of far objects the query phase is
/// allowed to verify before concluding (terminating condition T2 fires at
/// `k + β·n` verified candidates).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Beta {
    /// Absolute count: `β = count / n`. The paper's default is 100.
    Count(u64),
    /// Direct fraction of the dataset size, in `(0, 1)`.
    Fraction(f64),
}

impl Beta {
    /// Resolve against a dataset of `n` objects, clamped into a usable
    /// open interval (a β of 0 or ≥ 1 would make the Hoeffding bound
    /// degenerate).
    pub fn resolve(&self, n: usize) -> f64 {
        let raw = match *self {
            Beta::Count(c) => c as f64 / n.max(1) as f64,
            Beta::Fraction(f) => f,
        };
        raw.clamp(1.0 / (n.max(2) as f64 * 10.0), 0.999)
    }
}

/// Tunables of a C2LSH index.
#[derive(Debug, Clone, PartialEq)]
pub struct C2lshConfig {
    /// Integer approximation ratio `c ≥ 2`.
    pub c: u32,
    /// Bucket width `w` of the level-1 p-stable hash functions, in data
    /// units. The ρ-minimizing default is ≈ 2.184 for `c = 2` when the
    /// dataset's nearest-neighbor scale is ≈ 1; real deployments tune it
    /// to the data scale (see `cc-bench`'s width picker).
    pub w: f64,
    /// Failure budget `δ ∈ (0, 1/2)`; success probability ≥ `1/2 − δ`.
    /// Paper default `1/e`.
    pub delta: f64,
    /// The geometric base radius the theory's `R = 1` corresponds to, in
    /// data units. The paper normalizes its datasets so the nearest-
    /// neighbor scale is 1 and keeps this at 1.0; for raw data pass the
    /// distance that should count as "near" — the parameter derivation
    /// evaluates `p1 = p(base_radius, w)`, `p2 = p(c·base_radius, w)` and
    /// terminating condition T1 compares against `c·R·base_radius`.
    pub base_radius: f64,
    /// False-positive budget.
    pub beta: Beta,
    /// RNG seed for the hash family.
    pub seed: u64,
    /// Optional override of the derived number of hash functions `m`
    /// (used by ablation experiments; `None` = derive from theory).
    pub m_override: Option<usize>,
    /// Optional override of the derived collision threshold `l`.
    pub l_override: Option<usize>,
}

impl C2lshConfig {
    /// Start building a config (defaults: `c = 2`, `w = 2.184`,
    /// `δ = 1/e`, `β = Count(100)`, `seed = 0`).
    pub fn builder() -> ConfigBuilder {
        ConfigBuilder::default()
    }

    /// Validate all invariants.
    pub fn validate(&self) -> Result<(), C2lshError> {
        if self.c < 2 {
            return Err(C2lshError::BadApproximationRatio(self.c));
        }
        if !(self.w.is_finite() && self.w > 0.0) {
            return Err(C2lshError::BadBucketWidth(self.w));
        }
        if !(self.base_radius.is_finite() && self.base_radius > 0.0) {
            return Err(C2lshError::BadBucketWidth(self.base_radius));
        }
        if !(self.delta > 0.0 && self.delta < 0.5) {
            return Err(C2lshError::BadDelta(self.delta));
        }
        match self.beta {
            Beta::Count(0) => return Err(C2lshError::BadBeta(0.0)),
            Beta::Fraction(f) if !(f > 0.0 && f < 1.0) => return Err(C2lshError::BadBeta(f)),
            _ => {}
        }
        if self.m_override == Some(0) {
            return Err(C2lshError::BadM(0));
        }
        Ok(())
    }
}

impl Default for C2lshConfig {
    fn default() -> Self {
        ConfigBuilder::default().build()
    }
}

/// Builder for [`C2lshConfig`].
#[derive(Debug, Clone)]
pub struct ConfigBuilder {
    config: C2lshConfig,
}

impl Default for ConfigBuilder {
    fn default() -> Self {
        Self {
            config: C2lshConfig {
                c: 2,
                w: 2.184,
                delta: (-1.0f64).exp(),
                base_radius: 1.0,
                beta: Beta::Count(100),
                seed: 0,
                m_override: None,
                l_override: None,
            },
        }
    }
}

impl ConfigBuilder {
    /// Set the integer approximation ratio `c ≥ 2`.
    pub fn approximation_ratio(mut self, c: u32) -> Self {
        self.config.c = c;
        self
    }

    /// Set the level-1 bucket width `w > 0`.
    pub fn bucket_width(mut self, w: f64) -> Self {
        self.config.w = w;
        self
    }

    /// Set the failure budget `δ ∈ (0, 1/2)`.
    pub fn delta(mut self, delta: f64) -> Self {
        self.config.delta = delta;
        self
    }

    /// Set the geometric base radius (data units) the theory's `R = 1`
    /// maps to. Pair with `bucket_width ≈ 2.184 · base_radius` at c = 2.
    pub fn base_radius(mut self, r: f64) -> Self {
        self.config.base_radius = r;
        self
    }

    /// Set the false-positive budget.
    pub fn beta(mut self, beta: Beta) -> Self {
        self.config.beta = beta;
        self
    }

    /// Set the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Force a specific number of hash functions (ablations only).
    pub fn m_override(mut self, m: usize) -> Self {
        self.config.m_override = Some(m);
        self
    }

    /// Force a specific collision threshold (ablations only).
    pub fn l_override(mut self, l: usize) -> Self {
        self.config.l_override = Some(l);
        self
    }

    /// Finish, panicking on invalid combinations (builder misuse is a
    /// programming error; fallible validation is available via
    /// [`ConfigBuilder::try_build`]).
    pub fn build(self) -> C2lshConfig {
        self.try_build().expect("invalid C2LSH configuration")
    }

    /// Finish, returning a configuration error instead of panicking.
    pub fn try_build(self) -> Result<C2lshConfig, C2lshError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_papers() {
        let c = C2lshConfig::default();
        assert_eq!(c.c, 2);
        assert!((c.w - 2.184).abs() < 1e-12);
        assert!((c.delta - 1.0 / std::f64::consts::E).abs() < 1e-12);
        assert_eq!(c.beta, Beta::Count(100));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn beta_resolution() {
        assert!((Beta::Count(100).resolve(10_000) - 0.01).abs() < 1e-12);
        assert!((Beta::Fraction(0.05).resolve(123) - 0.05).abs() < 1e-12);
        // Clamped when the count exceeds the dataset.
        let b = Beta::Count(1000).resolve(100);
        assert!(b < 1.0);
    }

    #[test]
    fn builder_round_trip() {
        let c = C2lshConfig::builder()
            .approximation_ratio(3)
            .bucket_width(1.5)
            .delta(0.1)
            .beta(Beta::Fraction(0.02))
            .seed(99)
            .m_override(64)
            .l_override(32)
            .build();
        assert_eq!(c.c, 3);
        assert_eq!(c.seed, 99);
        assert_eq!(c.m_override, Some(64));
        assert_eq!(c.l_override, Some(32));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(matches!(
            C2lshConfig::builder().approximation_ratio(1).try_build(),
            Err(C2lshError::BadApproximationRatio(1))
        ));
        assert!(matches!(
            C2lshConfig::builder().bucket_width(0.0).try_build(),
            Err(C2lshError::BadBucketWidth(_))
        ));
        assert!(matches!(
            C2lshConfig::builder().bucket_width(f64::NAN).try_build(),
            Err(C2lshError::BadBucketWidth(_))
        ));
        assert!(matches!(
            C2lshConfig::builder().delta(0.5).try_build(),
            Err(C2lshError::BadDelta(_))
        ));
        assert!(matches!(
            C2lshConfig::builder().beta(Beta::Fraction(1.0)).try_build(),
            Err(C2lshError::BadBeta(_))
        ));
        assert!(matches!(
            C2lshConfig::builder().beta(Beta::Count(0)).try_build(),
            Err(C2lshError::BadBeta(_))
        ));
    }

    #[test]
    #[should_panic(expected = "invalid C2LSH configuration")]
    fn build_panics_on_invalid() {
        let _ = C2lshConfig::builder().approximation_ratio(0).build();
    }
}

//! The c-k-ANN query loop — the heart of C2LSH.
//!
//! The engine is generic over a [`TableStore`], so the exact same
//! algorithm runs against the in-memory index ([`crate::index`]) and the
//! paged disk index ([`crate::disk`]); only the storage accounting
//! differs.
//!
//! ## The algorithm (paper §4)
//!
//! ```text
//! R ← 1;  C ← ∅                         // verified candidates
//! loop:
//!   for each hash table i ∈ 1..m:
//!     grow table i's covered window to the level-R bucket of q
//!     for each newly covered object o:
//!       #Col(o) += 1
//!       if #Col(o) = l:                  // o became frequent
//!         verify o (compute true distance), C ← C ∪ {o}
//!         if |C| ≥ k + βn: STOP          // T2
//!   if |{o ∈ C : dist(o, q) ≤ c·R}| ≥ k: STOP   // T1
//!   if every window covers its whole table: STOP // exhausted
//!   R ← c·R
//! return the k nearest members of C
//! ```
//!
//! Because level windows nest, each `(object, table)` pair is counted at
//! most once across the whole query, so the cumulative count *is* the
//! collision count at the current radius.

use crate::config::C2lshConfig;
use crate::counting::CollisionCounter;
use crate::hash::HashFamily;
use crate::params::FullParams;
use crate::rehash::{radius_at, window, Window};
use crate::stats::{QueryStats, Termination};
use cc_vector::dataset::Dataset;
use cc_vector::dist::euclidean;
use cc_vector::gt::Neighbor;

/// Storage abstraction over the `m` per-function hash tables.
///
/// Each table is a run of `(level-1 bucket id, object id)` entries sorted
/// by bucket id; implementations expose binary search and range scans.
pub trait TableStore {
    /// Number of hash tables `m`.
    fn num_tables(&self) -> usize;

    /// Entries per table (= dataset size `n`).
    fn table_len(&self) -> usize;

    /// Index of the first entry of table `t` with bucket id ≥ `target`.
    fn lower_bound(&self, t: usize, target: i64) -> usize;

    /// Visit object ids of entries `[from, to)` of table `t` in order;
    /// stop early when `f` returns `false`.
    fn scan_while(&self, t: usize, from: usize, to: usize, f: &mut dyn FnMut(u32) -> bool);
}

/// Run one c-k-ANN query. Returns the k nearest verified candidates
/// (ascending distance) plus cost counters.
///
/// `counter` is caller-owned scratch so batch runs reuse its O(n) arrays.
#[allow(clippy::too_many_arguments)]
pub fn run_query<S: TableStore>(
    data: &Dataset,
    store: &S,
    family: &HashFamily,
    params: &FullParams,
    config: &C2lshConfig,
    counter: &mut CollisionCounter,
    q: &[f32],
    k: usize,
) -> (Vec<Neighbor>, QueryStats) {
    let c = config.c;
    assert!(k > 0, "k must be positive");
    assert_eq!(q.len(), data.dim(), "query dimensionality mismatch");
    assert!(q.iter().all(|x| x.is_finite()), "query contains non-finite coordinates");
    assert_eq!(store.num_tables(), family.len(), "store/family table count mismatch");

    let m = family.len();
    let n = store.table_len();
    let l = params.l as u32;
    let cap = k + params.beta_n; // T2 budget
    let mut stats = QueryStats::new();
    counter.begin_query();

    // Level-1 bucket of q under every function.
    let q_buckets: Vec<i64> = family.buckets(q);
    let mut windows = vec![Window::empty(); m];
    let mut candidates: Vec<Neighbor> = Vec::with_capacity(cap.min(n));

    let mut level: u32 = 0;
    'outer: loop {
        let radius = radius_at(c, level);
        stats.rounds += 1;
        stats.final_radius = radius;

        for t in 0..m {
            let (blo, bhi) = window(q_buckets[t], radius);
            // Map the bucket interval to entry indices. At level 0 this
            // is two binary searches; afterwards the window can only have
            // grown, so the searches are cheap but still O(log n) — the
            // dominant cost is the delta scan anyway.
            let elo = store.lower_bound(t, blo);
            let ehi = if bhi == i64::MIN { n } else { store.lower_bound(t, bhi) };
            let (left, right) = windows[t].grow(elo, ehi);

            for range in [left, right] {
                if range.is_empty() {
                    continue;
                }
                let mut done = false;
                store.scan_while(t, range.start, range.end, &mut |oid| {
                    stats.collisions_counted += 1;
                    let cnt = counter.increment(oid);
                    if cnt == l && counter.mark_verified(oid) {
                        let d = euclidean(data.get(oid as usize), q);
                        stats.candidates_verified += 1;
                        candidates.push(Neighbor::new(oid, d));
                        if candidates.len() >= cap {
                            done = true;
                            return false; // T2: stop scanning
                        }
                    }
                    true
                });
                if done {
                    stats.terminated_by = Termination::T2CandidateBudget;
                    break 'outer;
                }
            }
        }

        // T1: enough verified candidates within the geometric radius
        // c·R·base_radius?
        let c_r = c as f64 * radius as f64 * config.base_radius;
        if candidates.iter().filter(|cand| cand.dist <= c_r).count() >= k {
            stats.terminated_by = Termination::T1AtRadius;
            break;
        }
        // Exhausted: every window covers its whole table.
        if windows.iter().all(|w| w.is_full(n)) {
            stats.terminated_by = Termination::Exhausted;
            break;
        }
        level += 1;
    }

    candidates.sort_by(|a, b| a.dist.partial_cmp(&b.dist).unwrap().then(a.id.cmp(&b.id)));
    candidates.truncate(k);
    (candidates, stats)
}

#[cfg(test)]
mod tests {
    //! The query loop is exercised end-to-end through `C2lshIndex` and
    //! `DiskIndex` in their own modules and in `tests/`; here we pin the
    //! store-level contract with a hand-rolled mock.

    use super::*;
    use crate::config::C2lshConfig;

    /// A store over explicit `(bucket, oid)` tables.
    struct MockStore {
        tables: Vec<Vec<(i64, u32)>>,
    }

    impl TableStore for MockStore {
        fn num_tables(&self) -> usize {
            self.tables.len()
        }
        fn table_len(&self) -> usize {
            self.tables[0].len()
        }
        fn lower_bound(&self, t: usize, target: i64) -> usize {
            self.tables[t].partition_point(|e| e.0 < target)
        }
        fn scan_while(&self, t: usize, from: usize, to: usize, f: &mut dyn FnMut(u32) -> bool) {
            for e in &self.tables[t][from..to] {
                if !f(e.1) {
                    return;
                }
            }
        }
    }

    /// Build a coherent index+store for a tiny dataset via the real
    /// hashing path, then check the loop's bookkeeping.
    #[test]
    fn mock_store_agrees_with_real_index() {
        use cc_vector::gen::{generate, Distribution};
        let data = generate(
            Distribution::GaussianMixture { clusters: 4, spread: 0.02, scale: 10.0 },
            200,
            8,
            3,
        );
        let cfg = C2lshConfig::builder().bucket_width(1.0).seed(1).build();
        let params = FullParams::derive(data.len(), &cfg);
        let family = HashFamily::generate(params.m, data.dim(), &cfg);

        let mut tables = Vec::with_capacity(params.m);
        for t in 0..params.m {
            let h = family.get(t);
            let mut entries: Vec<(i64, u32)> =
                data.iter().enumerate().map(|(i, v)| (h.bucket(v), i as u32)).collect();
            entries.sort_unstable();
            tables.push(entries);
        }
        let store = MockStore { tables };
        let mut counter = CollisionCounter::new(data.len());
        let q = data.get(17).to_vec();
        let (nn, stats) = run_query(&data, &store, &family, &params, &cfg, &mut counter, &q, 3);
        assert_eq!(nn.len(), 3);
        assert_eq!(nn[0].id, 17, "query point itself must be the 1-NN");
        assert_eq!(nn[0].dist, 0.0);
        assert!(stats.candidates_verified >= 3);
        assert!(stats.rounds >= 1);
        // Collision increments can't exceed m·n.
        assert!(stats.collisions_counted <= (params.m * data.len()) as u64);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let data = cc_vector::Dataset::from_rows(&[vec![0.0f32; 4]]);
        let cfg = C2lshConfig::default();
        let params = FullParams::derive(1, &cfg);
        let family = HashFamily::generate(params.m, 4, &cfg);
        let store = MockStore { tables: vec![vec![(0, 0)]; params.m] };
        let mut counter = CollisionCounter::new(1);
        let _ = run_query(&data, &store, &family, &params, &cfg, &mut counter, &[0.0; 4], 0);
    }
}

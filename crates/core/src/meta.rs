//! Per-point attribute metadata and the filter predicates evaluated
//! *inside* the collision-counting loop.
//!
//! The paper's scheme only pays the true-distance cost for objects
//! whose dynamic collision count crosses the threshold `l`; filtered
//! search extends that pruning one step earlier: an object that crosses
//! the threshold but fails the query's [`Predicate`] is dropped before
//! [`cc_vector::dist::euclidean_sq_bounded`] ever runs, counted in
//! [`crate::stats::QueryStats::candidates_filtered`] instead of
//! `candidates_verified`. Every [`crate::engine::TableStore`] backend
//! resolves object ids to a [`PointMeta`] for this check.

/// A small per-point attribute payload: a 64-bit tag bitmask plus a
/// 32-bit label id. Both default to zero ("no attributes"), which every
/// trivial predicate accepts, so metadata-free corpora behave exactly
/// as before.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct PointMeta {
    /// Free-form tag bits (set semantics: bit `i` set ⇔ point carries
    /// tag `i`).
    pub tag: u64,
    /// Categorical label id (e.g. a shard key, tenant id, or class).
    pub label: u32,
}

impl PointMeta {
    /// A payload with both fields set.
    pub fn new(tag: u64, label: u32) -> Self {
        Self { tag, label }
    }

    /// A label-only payload (no tag bits).
    pub fn labeled(label: u32) -> Self {
        Self { tag: 0, label }
    }
}

/// A conjunctive filter over [`PointMeta`]: every present clause must
/// hold. The empty predicate (all clauses absent) matches every point
/// and is the `Default`.
///
/// The shape is deliberately flat — three optional clauses rather than
/// an expression tree — so it stays `Copy`, costs a handful of branches
/// per candidate inside the hot counting loop, and has a trivially
/// bounded wire encoding (see `cc-service`'s QueryV2 extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Predicate {
    /// Accept only points whose label equals this value.
    pub label_eq: Option<u32>,
    /// Accept only points with *at least one* of these tag bits set.
    pub tag_any: Option<u64>,
    /// Accept only points with *all* of these tag bits set.
    pub tag_all: Option<u64>,
}

impl Predicate {
    /// The match-everything predicate.
    pub fn any() -> Self {
        Self::default()
    }

    /// Match points labeled exactly `label`.
    pub fn label(label: u32) -> Self {
        Self { label_eq: Some(label), ..Self::default() }
    }

    /// Match points with at least one bit of `mask` set in their tag.
    pub fn tag_any(mask: u64) -> Self {
        Self { tag_any: Some(mask), ..Self::default() }
    }

    /// Match points with every bit of `mask` set in their tag.
    pub fn tag_all(mask: u64) -> Self {
        Self { tag_all: Some(mask), ..Self::default() }
    }

    /// Conjoin a label-equality clause onto `self`.
    pub fn and_label(mut self, label: u32) -> Self {
        self.label_eq = Some(label);
        self
    }

    /// Conjoin a tag-any clause onto `self`.
    pub fn and_tag_any(mut self, mask: u64) -> Self {
        self.tag_any = Some(mask);
        self
    }

    /// Conjoin a tag-all clause onto `self`.
    pub fn and_tag_all(mut self, mask: u64) -> Self {
        self.tag_all = Some(mask);
        self
    }

    /// `true` when no clause is present (matches everything). Callers
    /// can skip the per-candidate check entirely for trivial filters.
    pub fn is_trivial(&self) -> bool {
        self.label_eq.is_none() && self.tag_any.is_none() && self.tag_all.is_none()
    }

    /// Evaluate the conjunction against one point's payload.
    #[inline]
    pub fn matches(&self, meta: PointMeta) -> bool {
        if let Some(label) = self.label_eq {
            if meta.label != label {
                return false;
            }
        }
        if let Some(mask) = self.tag_any {
            if meta.tag & mask == 0 {
                return false;
            }
        }
        if let Some(mask) = self.tag_all {
            if meta.tag & mask != mask {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_predicate_matches_everything() {
        let p = Predicate::any();
        assert!(p.is_trivial());
        assert!(p.matches(PointMeta::default()));
        assert!(p.matches(PointMeta::new(u64::MAX, u32::MAX)));
    }

    #[test]
    fn label_clause() {
        let p = Predicate::label(7);
        assert!(!p.is_trivial());
        assert!(p.matches(PointMeta::labeled(7)));
        assert!(!p.matches(PointMeta::labeled(8)));
        // Tag bits are irrelevant to a label-only predicate.
        assert!(p.matches(PointMeta::new(0xFF, 7)));
    }

    #[test]
    fn tag_clauses() {
        let any = Predicate::tag_any(0b0110);
        assert!(any.matches(PointMeta::new(0b0100, 0)));
        assert!(any.matches(PointMeta::new(0b0010, 9)));
        assert!(!any.matches(PointMeta::new(0b1001, 0)));

        let all = Predicate::tag_all(0b0110);
        assert!(all.matches(PointMeta::new(0b0111, 0)));
        assert!(!all.matches(PointMeta::new(0b0100, 0)));
    }

    #[test]
    fn conjunction_requires_every_clause() {
        let p = Predicate::label(3).and_tag_all(0b01).and_tag_any(0b11);
        assert!(p.matches(PointMeta::new(0b01, 3)));
        assert!(!p.matches(PointMeta::new(0b01, 4)), "wrong label");
        assert!(!p.matches(PointMeta::new(0b10, 3)), "tag_all fails");
    }

    #[test]
    fn zero_masks_are_degenerate_but_well_defined() {
        // tag_any(0) can never match; tag_all(0) always matches.
        assert!(!Predicate::tag_any(0).matches(PointMeta::new(u64::MAX, 0)));
        assert!(Predicate::tag_all(0).matches(PointMeta::default()));
    }
}

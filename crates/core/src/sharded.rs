//! Horizontal sharding: one logical index over `S` disjoint data shards.
//!
//! Scaling an index past one allocation (or, eventually, one machine)
//! means partitioning the dataset. Collision counting makes this
//! unusually clean: when every shard uses the *same* hash family and
//! collision threshold, an object's count at radius `R` depends only on
//! its own buckets — never on other objects — so the counts computed
//! shard-by-shard are exactly the counts the unsharded index would
//! compute. [`ShardedEngine`] exploits this two ways:
//!
//! * **Exact path** — [`ShardedEngine::query`] /
//!   [`ShardedEngine::query_batch`] run the *single* engine loop of
//!   [`crate::engine::run_query`] over a [`TableStore`] that presents
//!   the shard tables as one concatenated table per hash function
//!   (object ids remapped to global). Rounds, terminating conditions
//!   and (absent mid-round T2 truncation) results are identical to an
//!   unsharded [`C2lshIndex`] over the same data — the property pinned
//!   by `tests/proptest_sharded.rs`.
//! * **Fan-out path** — [`ShardedEngine::query_fanout`] runs one
//!   engine loop *per shard* in parallel (each shard terminating
//!   independently) and merges the per-shard top-k by
//!   `f64::total_cmp`, folding the per-shard [`QueryStats`] with
//!   [`QueryStats::merge`]. Lower single-query latency; per-shard
//!   termination means it may verify more (never fewer kinds of)
//!   candidates than the exact path.
//!
//! The derived parameters `(m, l)` come from the **total** object
//! count and are forced into every shard via the config overrides, so
//! all shards share one hash family (same seed, same `m`, same `w`).

use crate::config::C2lshConfig;
use crate::engine::QueryScratch;
use crate::engine::{self, BucketWindows, SearchOptions, SearchParams, TableStore};
use crate::index::C2lshIndex;
use crate::meta::PointMeta;
use crate::params::FullParams;
use crate::stats::{BatchStats, QueryStats};
use cc_vector::dataset::Dataset;
use cc_vector::gt::Neighbor;
use parking_lot::Mutex;

/// A dataset partitioned into contiguous shards. Owns the per-shard
/// copies; [`ShardedEngine`] borrows them (the same borrow discipline
/// as [`C2lshIndex`] over a [`Dataset`]).
#[derive(Debug)]
pub struct ShardedData {
    shards: Vec<Dataset>,
    /// `offsets[s]` = global id of shard `s`'s first object;
    /// a trailing entry holds the total count.
    offsets: Vec<u32>,
}

impl ShardedData {
    /// Split `data` into `num_shards` contiguous chunks of near-equal
    /// size (the first `n % num_shards` shards get one extra row).
    /// Global object id `g` lands in the shard covering it, as local id
    /// `g - offsets[s]` — so ids reported by a [`ShardedEngine`] match
    /// the source dataset's row numbers.
    ///
    /// # Panics
    /// Panics when `num_shards == 0` or `num_shards > data.len()`
    /// (every shard must hold at least one object).
    pub fn partition(data: &Dataset, num_shards: usize) -> Self {
        let n = data.len();
        assert!(num_shards > 0, "need at least one shard");
        assert!(num_shards <= n, "cannot spread {n} objects over {num_shards} shards");
        let base = n / num_shards;
        let extra = n % num_shards;
        let mut shards = Vec::with_capacity(num_shards);
        let mut offsets = Vec::with_capacity(num_shards + 1);
        let mut lo = 0usize;
        for s in 0..num_shards {
            let len = base + usize::from(s < extra);
            offsets.push(lo as u32);
            shards.push(data.slice_rows(lo, lo + len));
            lo += len;
        }
        offsets.push(n as u32);
        Self { shards, offsets }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total objects across all shards.
    pub fn len(&self) -> usize {
        *self.offsets.last().unwrap() as usize
    }

    /// `true` when no shard holds any object (unreachable via
    /// [`ShardedData::partition`], which requires non-empty shards).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimensionality of the vectors.
    pub fn dim(&self) -> usize {
        self.shards[0].dim()
    }

    /// Borrow shard `s`'s dataset.
    pub fn shard(&self, s: usize) -> &Dataset {
        &self.shards[s]
    }
}

/// One logical collision-counting index over partitioned data: a
/// [`C2lshIndex`] per shard, all sharing one hash family and one set of
/// derived parameters, driven by the generic engine. See the module
/// docs for the exact-vs-fanout trade-off.
#[derive(Debug)]
pub struct ShardedEngine<'d> {
    shards: Vec<C2lshIndex<'d>>,
    offsets: &'d [u32],
    params: FullParams,
    search: SearchParams,
    /// Scratch for the exact single-query path (sized to the total n).
    scratch: Mutex<QueryScratch>,
}

impl<'d> ShardedEngine<'d> {
    /// Build the per-shard indexes. Parameters `(m, l, β·n)` are
    /// derived from the **total** object count, then forced into every
    /// shard build so all shards draw the identical hash family.
    ///
    /// # Panics
    /// Panics on an invalid config (same contract as
    /// [`C2lshIndex::build`]).
    pub fn build(data: &'d ShardedData, config: &C2lshConfig) -> Self {
        let n = data.len();
        let params = FullParams::derive(n, config);
        let shard_config = C2lshConfig {
            m_override: Some(params.m),
            l_override: Some(params.l),
            ..config.clone()
        };
        let shards: Vec<C2lshIndex<'d>> =
            data.shards.iter().map(|d| C2lshIndex::build(d, &shard_config)).collect();
        let search = SearchParams {
            c: config.c,
            l: params.l as u32,
            beta_n: params.beta_n,
            base_radius: config.base_radius,
        };
        Self {
            shards,
            offsets: &data.offsets,
            params,
            search,
            scratch: Mutex::new(QueryScratch::new(n)),
        }
    }

    /// The derived parameters in effect (shared by every shard).
    pub fn params(&self) -> &FullParams {
        &self.params
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Dataset dimensionality (inherent mirror of the [`TableStore`]
    /// accessor, so callers don't need the trait in scope).
    pub fn dim(&self) -> usize {
        TableStore::dim(self)
    }

    /// Total objects across all shards.
    pub fn len(&self) -> usize {
        TableStore::len(self)
    }

    /// `true` when no shard holds any object (unreachable via
    /// [`ShardedData::partition`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// c-k-ANN query with exact unsharded semantics: one engine loop
    /// over the concatenated shard tables. Ids are global row numbers
    /// of the source dataset.
    pub fn query(&self, q: &[f32], k: usize) -> (Vec<Neighbor>, QueryStats) {
        self.query_with(q, k, &SearchOptions::default())
    }

    /// [`ShardedEngine::query`] with explicit observability options.
    pub fn query_with(
        &self,
        q: &[f32],
        k: usize,
        opts: &SearchOptions,
    ) -> (Vec<Neighbor>, QueryStats) {
        let mut scratch = self.scratch.lock();
        engine::run_query(self, &self.search, &mut scratch, q, k, opts)
    }

    /// Answer a whole query set in parallel across scoped threads
    /// (exact semantics, as [`ShardedEngine::query`]).
    pub fn query_batch(
        &self,
        queries: &Dataset,
        k: usize,
    ) -> (Vec<(Vec<Neighbor>, QueryStats)>, BatchStats) {
        self.query_batch_with(queries, k, &SearchOptions::default())
    }

    /// [`ShardedEngine::query_batch`] with explicit observability
    /// options.
    pub fn query_batch_with(
        &self,
        queries: &Dataset,
        k: usize,
        opts: &SearchOptions,
    ) -> (Vec<(Vec<Neighbor>, QueryStats)>, BatchStats) {
        engine::run_query_batch(self, &self.search, queries, k, opts)
    }

    /// Low-latency fan-out: run the engine loop on every shard in
    /// parallel (each shard terminates independently), remap ids to
    /// global, merge the per-shard top-k by `f64::total_cmp` (ties by
    /// id) and fold the per-shard stats with [`QueryStats::merge`].
    ///
    /// May return *closer* neighbors than [`ShardedEngine::query`] when
    /// a small shard keeps expanding past the radius at which the
    /// global loop would have stopped; both paths return valid c-k-ANN
    /// answers.
    pub fn query_fanout(
        &self,
        q: &[f32],
        k: usize,
        opts: &SearchOptions,
    ) -> (Vec<Neighbor>, QueryStats) {
        let mut per_shard: Vec<(Vec<Neighbor>, QueryStats)> =
            vec![(Vec::new(), QueryStats::new()); self.shards.len()];
        crossbeam::scope(|scope| {
            for (s, slot) in per_shard.iter_mut().enumerate() {
                let shard = &self.shards[s];
                scope.spawn(move |_| {
                    let mut scratch = QueryScratch::new(shard.len());
                    *slot = engine::run_query(shard, &self.search, &mut scratch, q, k, opts);
                });
            }
        })
        .expect("shard fan-out worker panicked");

        let mut merged = Vec::with_capacity(k * self.shards.len());
        let mut stats = QueryStats::new();
        for (s, (nn, shard_stats)) in per_shard.into_iter().enumerate() {
            let off = self.offsets[s];
            merged.extend(nn.into_iter().map(|n| Neighbor::new(n.id + off, n.dist)));
            stats.merge(&shard_stats);
        }
        merged.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        merged.truncate(k);
        (merged, stats)
    }

    /// Attach per-point metadata, indexed by **global** object id (one
    /// entry per row of the source dataset). The vector is split along
    /// the shard boundaries so each shard serves its own slice; both
    /// the exact and fan-out paths then honor `SearchOptions::filter`.
    ///
    /// # Panics
    /// Panics when `metas.len() != len()`.
    pub fn set_meta(&mut self, metas: Vec<PointMeta>) {
        assert_eq!(metas.len(), self.len(), "one PointMeta per indexed point");
        for (s, shard) in self.shards.iter_mut().enumerate() {
            let lo = self.offsets[s] as usize;
            let hi = self.offsets[s + 1] as usize;
            shard.set_meta(metas[lo..hi].to_vec());
        }
    }

    /// Builder-style [`ShardedEngine::set_meta`].
    #[must_use]
    pub fn with_meta(mut self, metas: Vec<PointMeta>) -> Self {
        self.set_meta(metas);
        self
    }

    /// Map a global object id to `(shard, local id)`.
    fn locate(&self, oid: u32) -> (usize, u32) {
        let s = self.offsets.partition_point(|&o| o <= oid) - 1;
        (s, oid - self.offsets[s])
    }
}

/// Per-query cursor of the exact path: one positional window set per
/// shard (all shards share the query's bucket ids, but window positions
/// differ with each shard's table contents).
pub struct ShardedCursor {
    per_shard: Vec<BucketWindows>,
}

impl TableStore for ShardedEngine<'_> {
    type Cursor = ShardedCursor;

    fn dim(&self) -> usize {
        self.shards[0].dim()
    }

    fn len(&self) -> usize {
        *self.offsets.last().unwrap() as usize
    }

    fn num_tables(&self) -> usize {
        self.params.m
    }

    fn begin(&self, q: &[f32]) -> ShardedCursor {
        // All shards share one hash family, so the query's bucket ids
        // are computed once and cloned into each shard's window set
        // rather than re-hashed `S` times.
        let buckets = self.shards[0].family().buckets(q);
        let mut per_shard = Vec::with_capacity(self.shards.len());
        for _ in 1..self.shards.len() {
            per_shard.push(BucketWindows::new(buckets.clone()));
        }
        per_shard.push(BucketWindows::new(buckets));
        ShardedCursor { per_shard }
    }

    fn begin_batch(&self, queries: &Dataset) -> Vec<ShardedCursor> {
        // One blocked matrix product hashes the whole batch for every
        // shard at once (shared family).
        let family = self.shards[0].family();
        let m = family.len();
        family
            .buckets_batch(queries)
            .chunks_exact(m)
            .map(|b| ShardedCursor {
                per_shard: self.shards.iter().map(|_| BucketWindows::new(b.to_vec())).collect(),
            })
            .collect()
    }

    fn expand(
        &self,
        cursor: &mut ShardedCursor,
        t: usize,
        radius: i64,
        visit: &mut dyn FnMut(u32) -> bool,
    ) {
        // Logical table t = concatenation of the shard tables for t;
        // ids remap by shard offset. Early-stop propagates across
        // shards through the flag.
        let mut stopped = false;
        for (s, shard) in self.shards.iter().enumerate() {
            let off = self.offsets[s];
            shard.expand(&mut cursor.per_shard[s], t, radius, &mut |local| {
                let keep_going = visit(local + off);
                stopped = !keep_going;
                keep_going
            });
            if stopped {
                return;
            }
        }
    }

    fn expand_slices(
        &self,
        cursor: &mut ShardedCursor,
        t: usize,
        radius: i64,
        visit: &mut dyn FnMut(&[u32]) -> bool,
    ) {
        // Shard 0's local ids are already global (offset 0) and pass
        // through untouched; later shards remap each native slice into
        // a stack buffer — a straight-line add over a `u32` slice, far
        // cheaper than the per-id virtual remap of `expand`.
        let mut stopped = false;
        let mut buf = [0u32; engine::EXPAND_SLICE_BUF];
        for (s, shard) in self.shards.iter().enumerate() {
            let off = self.offsets[s];
            shard.expand_slices(&mut cursor.per_shard[s], t, radius, &mut |oids| {
                if off == 0 {
                    let keep_going = visit(oids);
                    stopped = !keep_going;
                    return keep_going;
                }
                for chunk in oids.chunks(engine::EXPAND_SLICE_BUF) {
                    let remapped = &mut buf[..chunk.len()];
                    for (dst, &local) in remapped.iter_mut().zip(chunk) {
                        *dst = local + off;
                    }
                    if !visit(remapped) {
                        stopped = true;
                        return false;
                    }
                }
                true
            });
            if stopped {
                return;
            }
        }
    }

    fn exhausted(&self, cursor: &ShardedCursor) -> bool {
        self.shards.iter().zip(&cursor.per_shard).all(|(shard, windows)| shard.exhausted(windows))
    }

    fn vector(&self, oid: u32) -> Option<&[f32]> {
        let (s, local) = self.locate(oid);
        self.shards[s].vector(local)
    }

    fn meta(&self, oid: u32) -> PointMeta {
        let (s, local) = self.locate(oid);
        TableStore::meta(&self.shards[s], local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Beta;
    use cc_vector::gen::{generate, Distribution};

    fn clustered(n: usize, d: usize, seed: u64) -> Dataset {
        generate(
            Distribution::GaussianMixture { clusters: 8, spread: 0.02, scale: 10.0 },
            n,
            d,
            seed,
        )
    }

    /// T2 disabled (budget ≥ n) so results are independent of
    /// within-round visit order — the regime where sharded and
    /// unsharded answers are bit-identical.
    fn cfg_exact(n: usize) -> C2lshConfig {
        C2lshConfig::builder().bucket_width(1.0).seed(11).beta(Beta::Count(n as u64)).build()
    }

    #[test]
    fn partition_covers_all_rows_in_order() {
        let data = clustered(103, 6, 1);
        let sharded = ShardedData::partition(&data, 4);
        assert_eq!(sharded.num_shards(), 4);
        assert_eq!(sharded.len(), 103);
        // 103 = 26 + 26 + 26 + 25.
        let sizes: Vec<usize> = (0..4).map(|s| sharded.shard(s).len()).collect();
        assert_eq!(sizes, vec![26, 26, 26, 25]);
        let mut global = 0usize;
        for s in 0..4 {
            for i in 0..sharded.shard(s).len() {
                assert_eq!(sharded.shard(s).get(i), data.get(global), "row {global}");
                global += 1;
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot spread")]
    fn rejects_more_shards_than_rows() {
        let data = clustered(3, 4, 2);
        let _ = ShardedData::partition(&data, 4);
    }

    #[test]
    fn shards_share_one_hash_family() {
        let data = clustered(400, 8, 3);
        let sharded = ShardedData::partition(&data, 4);
        let engine = ShardedEngine::build(&sharded, &cfg_exact(400));
        let q = data.get(7);
        let reference: Vec<i64> = engine.shards[0].family().buckets(q);
        for s in 1..4 {
            assert_eq!(engine.shards[s].family().buckets(q), reference, "shard {s}");
        }
        assert_eq!(engine.params().m, engine.shards[2].params().m);
    }

    #[test]
    fn sharded_matches_unsharded_exactly() {
        let data = clustered(900, 10, 4);
        let cfg = cfg_exact(900);
        let single = C2lshIndex::build(&data, &cfg);
        let sharded = ShardedData::partition(&data, 4);
        let engine = ShardedEngine::build(&sharded, &cfg);
        for qi in [0usize, 123, 456, 899] {
            let q = data.get(qi);
            let (want, want_stats) = single.query(q, 7);
            let (got, got_stats) = engine.query(q, 7);
            assert_eq!(got, want, "query {qi}");
            assert_eq!(got_stats.rounds, want_stats.rounds, "query {qi}");
            assert_eq!(got_stats.candidates_verified, want_stats.candidates_verified, "query {qi}");
        }
    }

    #[test]
    fn batch_matches_single_queries() {
        let data = clustered(600, 8, 5);
        let cfg = cfg_exact(600);
        let sharded = ShardedData::partition(&data, 3);
        let engine = ShardedEngine::build(&sharded, &cfg);
        let queries = data.slice_rows(100, 117);
        let (batch, agg) = engine.query_batch(&queries, 5);
        assert_eq!(batch.len(), 17);
        assert_eq!(agg.queries, 17);
        for (qi, (nn, _)) in batch.iter().enumerate() {
            let (want, _) = engine.query(queries.get(qi), 5);
            assert_eq!(nn, &want, "query {qi}");
        }
    }

    #[test]
    fn fanout_returns_valid_global_ids_and_merged_stats() {
        let data = clustered(500, 8, 6);
        let cfg = cfg_exact(500);
        let sharded = ShardedData::partition(&data, 4);
        let engine = ShardedEngine::build(&sharded, &cfg);
        let q = data.get(42);
        let (nn, stats) = engine.query_fanout(q, 6, &SearchOptions::default());
        assert_eq!(nn.len(), 6);
        assert_eq!(nn[0].id, 42, "exact match must surface with its global id");
        assert_eq!(nn[0].dist, 0.0);
        for w in nn.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
        assert!(stats.candidates_verified >= 6);
        assert!(stats.rounds >= 1);
        // Fan-out can only improve on (or match) the exact path's
        // distances: each shard keeps expanding at least as far.
        let (exact, _) = engine.query(q, 6);
        for (f, e) in nn.iter().zip(&exact) {
            assert!(f.dist <= e.dist + 1e-6, "fanout {f:?} worse than exact {e:?}");
        }
    }

    #[test]
    fn sharded_filtered_matches_unsharded_filtered() {
        use crate::meta::Predicate;
        let data = clustered(700, 10, 8);
        let cfg = cfg_exact(700);
        let metas: Vec<PointMeta> = (0..700).map(|i| PointMeta::labeled(i % 5)).collect();
        let single = C2lshIndex::build(&data, &cfg).with_meta(metas.clone());
        let sharded = ShardedData::partition(&data, 3);
        let engine = ShardedEngine::build(&sharded, &cfg).with_meta(metas);
        let opts = SearchOptions { filter: Some(Predicate::label(2)), ..Default::default() };
        for qi in [0usize, 350, 699] {
            let q = data.get(qi);
            let (want, want_stats) = single.query_with(q, 6, &opts);
            let (got, got_stats) = engine.query_with(q, 6, &opts);
            assert_eq!(got, want, "query {qi}");
            assert_eq!(got_stats.candidates_filtered, want_stats.candidates_filtered, "query {qi}");
            for n in &got {
                assert_eq!(n.id % 5, 2, "predicate violated by {}", n.id);
            }
        }
    }

    #[test]
    fn single_shard_degenerates_to_plain_index() {
        let data = clustered(300, 8, 7);
        let cfg = cfg_exact(300);
        let single = C2lshIndex::build(&data, &cfg);
        let sharded = ShardedData::partition(&data, 1);
        let engine = ShardedEngine::build(&sharded, &cfg);
        let q = data.get(200);
        assert_eq!(engine.query(q, 9).0, single.query(q, 9).0);
        assert_eq!(engine.query_fanout(q, 9, &SearchOptions::default()).0, single.query(q, 9).0);
    }
}

//! Errors surfaced by configuration validation.

use std::fmt;

/// Why a [`crate::C2lshConfig`] could not be built.
#[derive(Debug, Clone, PartialEq)]
pub enum C2lshError {
    /// Approximation ratio must be an integer ≥ 2 (virtual rehashing
    /// merges `c` child buckets per level, so `c` must be integral).
    BadApproximationRatio(u32),
    /// Bucket width must be positive and finite.
    BadBucketWidth(f64),
    /// Failure budget must satisfy `0 < δ < 1/2`.
    BadDelta(f64),
    /// False-positive budget must be positive (count) or in `(0, 1)`
    /// (fraction).
    BadBeta(f64),
    /// Explicit `m` override must be ≥ 1.
    BadM(usize),
}

impl fmt::Display for C2lshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            C2lshError::BadApproximationRatio(c) => {
                write!(f, "approximation ratio must be an integer >= 2, got {c}")
            }
            C2lshError::BadBucketWidth(w) => {
                write!(f, "bucket width must be positive and finite, got {w}")
            }
            C2lshError::BadDelta(d) => write!(f, "delta must be in (0, 1/2), got {d}"),
            C2lshError::BadBeta(b) => {
                write!(f, "beta must be positive (and < 1 as a fraction), got {b}")
            }
            C2lshError::BadM(m) => write!(f, "explicit m must be >= 1, got {m}"),
        }
    }
}

impl std::error::Error for C2lshError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = C2lshError::BadApproximationRatio(1);
        assert!(e.to_string().contains("integer >= 2"));
        let e = C2lshError::BadBucketWidth(-1.0);
        assert!(e.to_string().contains("-1"));
    }
}

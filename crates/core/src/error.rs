//! Errors: configuration validation ([`C2lshError`]) and the unified
//! workspace-wide error type ([`Error`] / [`ErrorKind`]).
//!
//! [`ErrorKind`] carries a *stable* numeric code — the protocol's
//! Error frames put the code on the wire so clients can branch on the
//! kind without parsing prose, and the codes are append-only: a kind,
//! once assigned, never changes its number.

use std::fmt;

/// Why a [`crate::C2lshConfig`] could not be built.
#[derive(Debug, Clone, PartialEq)]
pub enum C2lshError {
    /// Approximation ratio must be an integer ≥ 2 (virtual rehashing
    /// merges `c` child buckets per level, so `c` must be integral).
    BadApproximationRatio(u32),
    /// Bucket width must be positive and finite.
    BadBucketWidth(f64),
    /// Failure budget must satisfy `0 < δ < 1/2`.
    BadDelta(f64),
    /// False-positive budget must be positive (count) or in `(0, 1)`
    /// (fraction).
    BadBeta(f64),
    /// Explicit `m` override must be ≥ 1.
    BadM(usize),
}

impl fmt::Display for C2lshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            C2lshError::BadApproximationRatio(c) => {
                write!(f, "approximation ratio must be an integer >= 2, got {c}")
            }
            C2lshError::BadBucketWidth(w) => {
                write!(f, "bucket width must be positive and finite, got {w}")
            }
            C2lshError::BadDelta(d) => write!(f, "delta must be in (0, 1/2), got {d}"),
            C2lshError::BadBeta(b) => {
                write!(f, "beta must be positive (and < 1 as a fraction), got {b}")
            }
            C2lshError::BadM(m) => write!(f, "explicit m must be >= 1, got {m}"),
        }
    }
}

impl std::error::Error for C2lshError {}

/// Stable, machine-readable error classification. The numeric codes
/// are part of the wire protocol (Error frames carry them as `u16`)
/// and are append-only — never renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorKind {
    /// Invalid build-time configuration (bad `c`, `w`, `δ`, `β`, `m`).
    Config,
    /// A request argument was rejected (dimension mismatch, k out of
    /// range, non-finite coordinates).
    InvalidArgument,
    /// The operation is not supported by this engine (e.g. mutations
    /// against a read-only index).
    Unsupported,
    /// An underlying I/O failure (WAL append, checkpoint, socket).
    Io,
    /// A malformed or protocol-violating frame.
    Protocol,
    /// The service is shutting down and no longer admits work.
    Draining,
    /// Anything that does not fit the categories above — including
    /// codes from a future peer this build does not know.
    Internal,
    /// The serving node cannot satisfy the request's freshness bound
    /// (`min_seq` ahead of the node's applied sequence). Retryable:
    /// pick another replica or wait for replication to catch up.
    Stale,
}

impl ErrorKind {
    /// The stable wire code for this kind.
    pub fn code(self) -> u16 {
        match self {
            ErrorKind::Config => 1,
            ErrorKind::InvalidArgument => 2,
            ErrorKind::Unsupported => 3,
            ErrorKind::Io => 4,
            ErrorKind::Protocol => 5,
            ErrorKind::Draining => 6,
            ErrorKind::Internal => 7,
            ErrorKind::Stale => 8,
        }
    }

    /// Decode a wire code; unknown codes (a newer peer) collapse to
    /// [`ErrorKind::Internal`] rather than failing the frame.
    pub fn from_code(code: u16) -> ErrorKind {
        match code {
            1 => ErrorKind::Config,
            2 => ErrorKind::InvalidArgument,
            3 => ErrorKind::Unsupported,
            4 => ErrorKind::Io,
            5 => ErrorKind::Protocol,
            6 => ErrorKind::Draining,
            8 => ErrorKind::Stale,
            _ => ErrorKind::Internal,
        }
    }

    /// Short lowercase label (used in messages and metrics).
    pub fn label(self) -> &'static str {
        match self {
            ErrorKind::Config => "config",
            ErrorKind::InvalidArgument => "invalid_argument",
            ErrorKind::Unsupported => "unsupported",
            ErrorKind::Io => "io",
            ErrorKind::Protocol => "protocol",
            ErrorKind::Draining => "draining",
            ErrorKind::Internal => "internal",
            ErrorKind::Stale => "stale",
        }
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The unified error type: a stable [`ErrorKind`] plus a human
/// message. Every error the engine, persistence layer or service can
/// produce converts into this (see the `From` impls here and in
/// `cc-service` for its protocol errors), so callers match on one
/// type and the wire carries one code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    kind: ErrorKind,
    message: String,
}

impl Error {
    /// An error of `kind` with a human-readable message.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        Error { kind, message: message.into() }
    }

    /// Shorthand for [`ErrorKind::InvalidArgument`].
    pub fn invalid(message: impl Into<String>) -> Self {
        Error::new(ErrorKind::InvalidArgument, message)
    }

    /// The machine-readable classification.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// The human-readable message (no kind prefix).
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.label(), self.message)
    }
}

impl std::error::Error for Error {}

impl From<C2lshError> for Error {
    fn from(e: C2lshError) -> Self {
        Error::new(ErrorKind::Config, e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::new(ErrorKind::Io, e.to_string())
    }
}

impl From<crate::persist::PersistError> for Error {
    fn from(e: crate::persist::PersistError) -> Self {
        Error::new(ErrorKind::Io, e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = C2lshError::BadApproximationRatio(1);
        assert!(e.to_string().contains("integer >= 2"));
        let e = C2lshError::BadBucketWidth(-1.0);
        assert!(e.to_string().contains("-1"));
    }

    #[test]
    fn kind_codes_round_trip_and_are_stable() {
        let kinds = [
            ErrorKind::Config,
            ErrorKind::InvalidArgument,
            ErrorKind::Unsupported,
            ErrorKind::Io,
            ErrorKind::Protocol,
            ErrorKind::Draining,
            ErrorKind::Internal,
            ErrorKind::Stale,
        ];
        for k in kinds {
            assert_eq!(ErrorKind::from_code(k.code()), k);
        }
        // The wire contract: these exact numbers, forever.
        assert_eq!(ErrorKind::Config.code(), 1);
        assert_eq!(ErrorKind::InvalidArgument.code(), 2);
        assert_eq!(ErrorKind::Unsupported.code(), 3);
        assert_eq!(ErrorKind::Io.code(), 4);
        assert_eq!(ErrorKind::Protocol.code(), 5);
        assert_eq!(ErrorKind::Draining.code(), 6);
        assert_eq!(ErrorKind::Internal.code(), 7);
        assert_eq!(ErrorKind::Stale.code(), 8);
        // Unknown codes degrade gracefully.
        assert_eq!(ErrorKind::from_code(999), ErrorKind::Internal);
    }

    #[test]
    fn conversions_preserve_the_story() {
        let e: Error = C2lshError::BadM(0).into();
        assert_eq!(e.kind(), ErrorKind::Config);
        assert!(e.message().contains("m must be >= 1"));
        let e: Error = std::io::Error::other("disk on fire").into();
        assert_eq!(e.kind(), ErrorKind::Io);
        assert!(e.to_string().starts_with("io: "), "{e}");
    }
}

//! Per-query cost counters.
//!
//! Every experiment in the paper reports some slice of these: verified
//! candidates (distance computations), page I/O, rounds of virtual
//! rehashing. They are returned alongside the neighbors by every query
//! entry point.

use cc_storage::pagefile::IoStats;

/// Why the query loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// T1: at the end of a round, ≥ k verified candidates lay within
    /// `c·R` of the query.
    T1AtRadius,
    /// T2: `k + β·n` candidates were verified.
    T2CandidateBudget,
    /// The windows covered every table completely (tiny datasets or
    /// pathological configurations); all reachable candidates were seen.
    Exhausted,
}

/// Cost counters for one c-k-ANN query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryStats {
    /// Virtual-rehashing rounds executed (levels tried).
    pub rounds: u32,
    /// Final search radius `R = c^(rounds-1)` reached.
    pub final_radius: i64,
    /// Total collision-count increments performed.
    pub collisions_counted: u64,
    /// Objects whose true distance was computed (= frequent objects).
    pub candidates_verified: usize,
    /// Page I/O (zero in memory mode).
    pub io: IoStats,
    /// Which condition stopped the loop.
    pub terminated_by: Termination,
}

impl QueryStats {
    /// A zeroed stats block (start of a query).
    pub fn new() -> Self {
        Self {
            rounds: 0,
            final_radius: 1,
            collisions_counted: 0,
            candidates_verified: 0,
            io: IoStats::default(),
            terminated_by: Termination::Exhausted,
        }
    }
}

impl Default for QueryStats {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_stats_are_zero() {
        let s = QueryStats::new();
        assert_eq!(s.rounds, 0);
        assert_eq!(s.collisions_counted, 0);
        assert_eq!(s.candidates_verified, 0);
        assert_eq!(s.io.total(), 0);
        assert_eq!(s.terminated_by, Termination::Exhausted);
    }
}

//! Per-query and per-batch cost counters.
//!
//! Every experiment in the paper reports some slice of these: verified
//! candidates (distance computations), page I/O, rounds of virtual
//! rehashing. They are returned alongside the neighbors by every query
//! entry point. The optional observability layer — per-round
//! [`RoundStats`] breakdowns and wall-clock timings — is off by default
//! and enabled through [`crate::engine::SearchOptions`]; batch runs
//! aggregate into [`BatchStats`].

use cc_obs::SpanRecord;
use cc_storage::pagefile::IoStats;

/// Wall-clock nanoseconds attributed to each stage of the query
/// pipeline, recorded when
/// [`crate::engine::SearchOptions::stage_timing`] is set. This is the
/// per-stage accounting the LSH benchmarking literature keys on —
/// hashing vs. counting vs. verification — and what the service's
/// `/metrics` histograms are fed from.
///
/// Under [`QueryStats::merge`]'s parallel-composition semantics every
/// stage *adds*: the merged value is total CPU-nanoseconds spent in
/// that stage across shards, not wall clock (wall clock stays in
/// [`QueryStats::elapsed_nanos`], which maxes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageNanos {
    /// Hashing the query under all `m` functions and positioning the
    /// per-table windows ([`crate::engine::TableStore::begin`]).
    pub hash: u64,
    /// Window expansion + collision counting, *excluding* the time
    /// inside candidate verification (which is bracketed separately
    /// even though it runs interleaved with counting).
    pub count: u64,
    /// Candidate verification: true-distance computations, including
    /// early-abandoned ones.
    pub verify: u64,
    /// Final ranking: sorting the retained candidates and cutting to k.
    pub rank: u64,
}

impl StageNanos {
    /// Fold another block in: every stage adds (CPU-time semantics).
    /// Associative and commutative with `StageNanos::default()` as the
    /// identity.
    pub fn merge(&mut self, other: &StageNanos) {
        self.hash += other.hash;
        self.count += other.count;
        self.verify += other.verify;
        self.rank += other.rank;
    }

    /// Sum over all stages.
    pub fn total(&self) -> u64 {
        self.hash + self.count + self.verify + self.rank
    }
}

/// Why the query loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// T1: at the end of a round, ≥ k verified candidates lay within
    /// `c·R` of the query.
    T1AtRadius,
    /// T2: `k + β·n` candidates were verified.
    T2CandidateBudget,
    /// The windows covered every table completely (tiny datasets or
    /// pathological configurations); all reachable candidates were seen.
    Exhausted,
}

/// One virtual-rehashing round's share of the work (recorded only when
/// [`crate::engine::SearchOptions::per_round`] is set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundStats {
    /// Level index (radius = c^level), starting at 0.
    pub level: u32,
    /// Search radius of this round.
    pub radius: i64,
    /// Collision-count increments performed this round (= entries newly
    /// covered by the window growth of this round).
    pub collisions: u64,
    /// Candidates verified this round.
    pub verified: usize,
    /// Verified candidates (cumulative) within `c·R·base_radius` at the
    /// end of this round — the T1 progress measure.
    pub within_c_r: usize,
    /// Wall-clock nanoseconds spent in this round; 0 unless
    /// [`crate::engine::SearchOptions::timing`] is also set.
    pub elapsed_nanos: u64,
}

/// Cost counters for one c-k-ANN query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryStats {
    /// Virtual-rehashing rounds executed (levels tried).
    pub rounds: u32,
    /// Final search radius `R = c^(rounds-1)` reached.
    pub final_radius: i64,
    /// Total collision-count increments performed.
    pub collisions_counted: u64,
    /// Objects whose true distance was computed (= frequent objects).
    pub candidates_verified: usize,
    /// Of the verified candidates, how many the early-abandon kernel cut
    /// short (their partial distance exceeded the running k-th best, so
    /// the full distance was never finished). Always ≤
    /// `candidates_verified`; 0 when
    /// [`crate::engine::SearchOptions::early_abandon`] is off.
    pub candidates_abandoned: usize,
    /// Frequent objects rejected by the query's
    /// [`crate::meta::Predicate`] *before* verification: their true
    /// distance was never computed, so they appear in neither
    /// `candidates_verified` nor `candidates_abandoned` and do not
    /// consume the T2 budget. Always 0 for unfiltered queries.
    pub candidates_filtered: usize,
    /// Page I/O (zero in memory mode).
    pub io: IoStats,
    /// Which condition stopped the loop.
    pub terminated_by: Termination,
    /// Per-round breakdown; empty unless
    /// [`crate::engine::SearchOptions::per_round`] was set.
    pub per_round: Vec<RoundStats>,
    /// Wall-clock nanoseconds for the whole query; 0 unless
    /// [`crate::engine::SearchOptions::timing`] was set.
    pub elapsed_nanos: u64,
    /// Sequence number of the index snapshot this query ran against
    /// (the last mutation visible to it). 0 for immutable backends;
    /// stamped by [`crate::mutable::MutableIndex`] query paths, and a
    /// client's proof of read-your-writes: once an ack for seq `s`
    /// arrived, every later query reports `snapshot_seq >= s`.
    pub snapshot_seq: u64,
    /// Per-stage wall-clock breakdown; all-zero unless
    /// [`crate::engine::SearchOptions::stage_timing`] was set.
    pub stage: StageNanos,
    /// Captured span tree; empty unless
    /// [`crate::engine::SearchOptions::capture_spans`] selected this
    /// query for tracing. Offsets are relative to the query's own
    /// start.
    pub spans: Vec<SpanRecord>,
}

impl QueryStats {
    /// A zeroed stats block (start of a query).
    pub fn new() -> Self {
        Self {
            rounds: 0,
            final_radius: 1,
            collisions_counted: 0,
            candidates_verified: 0,
            candidates_abandoned: 0,
            candidates_filtered: 0,
            io: IoStats::default(),
            terminated_by: Termination::Exhausted,
            per_round: Vec::new(),
            elapsed_nanos: 0,
            snapshot_seq: 0,
            stage: StageNanos::default(),
            spans: Vec::new(),
        }
    }

    /// Fold another sub-query's counters into this one, under
    /// *parallel-composition* semantics: the two stats blocks describe
    /// the same logical query executed against disjoint shards of the
    /// data, so work counters (collisions, verifications, I/O) add
    /// while depth/time counters (rounds, final radius, wall clock)
    /// take the maximum and terminations combine by severity
    /// (`T2 > T1 > Exhausted`). Per-round breakdowns merge level by
    /// level.
    ///
    /// The operation is associative and commutative on the counter
    /// fields, with a fresh `QueryStats` whose `rounds == 0` acting as
    /// the identity (any real query reaches `final_radius ≥ 1`), so
    /// shard- and batch-level aggregations compose in any grouping.
    pub fn merge(&mut self, other: &QueryStats) {
        self.rounds = self.rounds.max(other.rounds);
        self.final_radius = self.final_radius.max(other.final_radius);
        self.collisions_counted += other.collisions_counted;
        self.candidates_verified += other.candidates_verified;
        self.candidates_abandoned += other.candidates_abandoned;
        self.candidates_filtered += other.candidates_filtered;
        self.io.reads += other.io.reads;
        self.io.writes += other.io.writes;
        self.terminated_by = severest(self.terminated_by, other.terminated_by);
        for (level, r) in other.per_round.iter().enumerate() {
            if let Some(mine) = self.per_round.get_mut(level) {
                mine.collisions += r.collisions;
                mine.verified += r.verified;
                mine.within_c_r += r.within_c_r;
                mine.elapsed_nanos = mine.elapsed_nanos.max(r.elapsed_nanos);
            } else {
                self.per_round.push(*r);
            }
        }
        self.elapsed_nanos = self.elapsed_nanos.max(other.elapsed_nanos);
        // Shards of one logical query see the same snapshot; max keeps
        // the merge total and makes 0 (immutable backend) the identity.
        self.snapshot_seq = self.snapshot_seq.max(other.snapshot_seq);
        // Stage time adds (CPU-time across shards); spans union as a
        // multiset, kept in a canonical total order so the merge stays
        // associative and commutative under equality.
        self.stage.merge(&other.stage);
        if !other.spans.is_empty() {
            self.spans.extend(other.spans.iter().cloned());
            self.spans.sort_unstable_by(|a, b| {
                (a.start_ns, a.depth, a.name, a.dur_ns, a.detail)
                    .cmp(&(b.start_ns, b.depth, b.name, b.dur_ns, b.detail))
            });
        }
    }
}

/// Combine terminations of parallel sub-queries: a budget hit anywhere
/// dominates, a radius stop beats running out of data. The ordering is
/// total, so the combine is associative; `Exhausted` (the fresh-stats
/// default) is its identity.
fn severest(a: Termination, b: Termination) -> Termination {
    fn rank(t: Termination) -> u8 {
        match t {
            Termination::Exhausted => 0,
            Termination::T1AtRadius => 1,
            Termination::T2CandidateBudget => 2,
        }
    }
    if rank(b) > rank(a) {
        b
    } else {
        a
    }
}

impl Default for QueryStats {
    fn default() -> Self {
        Self::new()
    }
}

/// Counters for the write path: mutations applied and the WAL work
/// they cost. Produced per batch by
/// [`crate::mutable::MutableIndex::apply_batch`] and accumulated into
/// [`BatchStats::mutations`] by the serving layer, mirroring how query
/// counters flow into the same aggregate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MutationStats {
    /// Vectors inserted.
    pub inserts: u64,
    /// Objects deleted (the id existed and was live).
    pub deletes: u64,
    /// Delete requests whose id was unknown or already deleted
    /// (acknowledged as not-found, never logged to the WAL).
    pub delete_misses: u64,
    /// Mutation batches applied (= snapshot publications).
    pub batches: u64,
    /// WAL records appended.
    pub wal_records: u64,
    /// WAL fsyncs issued (group commit: one per batch, so
    /// `wal_records / wal_syncs` is the mean commit group size).
    pub wal_syncs: u64,
    /// Bytes appended to the WAL.
    pub wal_bytes: u64,
    /// Highest sequence number acknowledged so far (0 when none).
    pub last_seq: u64,
}

impl MutationStats {
    /// Fold another window's counters into this one: every count adds,
    /// `last_seq` takes the maximum. Associative and commutative with
    /// `MutationStats::default()` as the identity, matching the other
    /// stats merges.
    pub fn merge(&mut self, other: &MutationStats) {
        self.inserts += other.inserts;
        self.deletes += other.deletes;
        self.delete_misses += other.delete_misses;
        self.batches += other.batches;
        self.wal_records += other.wal_records;
        self.wal_syncs += other.wal_syncs;
        self.wal_bytes += other.wal_bytes;
        self.last_seq = self.last_seq.max(other.last_seq);
    }

    /// Mutations applied (inserts + deletes, excluding misses).
    pub fn applied(&self) -> u64 {
        self.inserts + self.deletes
    }
}

/// Aggregated cost counters over a set of queries, built by folding
/// [`QueryStats`] via [`BatchStats::absorb`]. The batch executor
/// ([`crate::engine::run_query_batch`]) returns one per batch; bench
/// code consumes these instead of hand-folding counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchStats {
    /// Queries aggregated.
    pub queries: usize,
    /// Total rounds across all queries.
    pub rounds: u64,
    /// Total collision-count increments.
    pub collisions: u64,
    /// Total candidates verified.
    pub verified: u64,
    /// Total candidates cut short by the early-abandon kernel (subset of
    /// `verified`).
    pub abandoned: u64,
    /// Total frequent objects rejected by per-query predicates before
    /// verification (disjoint from `verified`).
    pub filtered: u64,
    /// Total page I/O: per-query verification charges plus (for batch
    /// runs) the store's table-read delta over the whole batch.
    pub io: IoStats,
    /// Queries that stopped via T1.
    pub t1: usize,
    /// Queries that stopped via T2.
    pub t2: usize,
    /// Queries that exhausted their windows.
    pub exhausted: usize,
    /// Wall-clock nanoseconds: sum of per-query times when absorbed
    /// sequentially, or the whole-batch wall time from the parallel
    /// executor (with [`crate::engine::SearchOptions::timing`]).
    pub elapsed_nanos: u64,
    /// Write-path counters for workloads that interleave mutations with
    /// queries (untouched by [`BatchStats::absorb`], which folds a
    /// read-only query; filled by the serving layer via
    /// [`MutationStats::merge`]).
    pub mutations: MutationStats,
    /// Summed per-stage time across all absorbed queries; all-zero
    /// unless [`crate::engine::SearchOptions::stage_timing`] was set.
    pub stage: StageNanos,
}

impl BatchStats {
    /// Fold one query's counters into the aggregate.
    pub fn absorb(&mut self, s: &QueryStats) {
        self.queries += 1;
        self.rounds += s.rounds as u64;
        self.collisions += s.collisions_counted;
        self.verified += s.candidates_verified as u64;
        self.abandoned += s.candidates_abandoned as u64;
        self.filtered += s.candidates_filtered as u64;
        self.io.reads += s.io.reads;
        self.io.writes += s.io.writes;
        match s.terminated_by {
            Termination::T1AtRadius => self.t1 += 1,
            Termination::T2CandidateBudget => self.t2 += 1,
            Termination::Exhausted => self.exhausted += 1,
        }
        self.elapsed_nanos += s.elapsed_nanos;
        self.stage.merge(&s.stage);
    }

    /// Fold another batch's counters into this one. The two batches
    /// must cover *disjoint* query sets (successive flushes of a
    /// serving queue, independent benchmark runs): every field —
    /// including `queries` and wall clock — adds. The operation is
    /// associative and commutative with `BatchStats::default()` as the
    /// identity, so aggregates compose in any grouping. (Combining the
    /// *same* queries run against different shards is the job of
    /// [`QueryStats::merge`], not this.)
    pub fn merge(&mut self, other: &BatchStats) {
        self.queries += other.queries;
        self.rounds += other.rounds;
        self.collisions += other.collisions;
        self.verified += other.verified;
        self.abandoned += other.abandoned;
        self.filtered += other.filtered;
        self.io.reads += other.io.reads;
        self.io.writes += other.io.writes;
        self.t1 += other.t1;
        self.t2 += other.t2;
        self.exhausted += other.exhausted;
        self.elapsed_nanos += other.elapsed_nanos;
        self.mutations.merge(&other.mutations);
        self.stage.merge(&other.stage);
    }

    /// Mean verified candidates per query (0 for an empty batch).
    pub fn mean_verified(&self) -> f64 {
        self.per_query(self.verified as f64)
    }

    /// Mean page reads per query (0 for an empty batch).
    pub fn mean_io_reads(&self) -> f64 {
        self.per_query(self.io.reads as f64)
    }

    /// Mean rounds per query (0 for an empty batch).
    pub fn mean_rounds(&self) -> f64 {
        self.per_query(self.rounds as f64)
    }

    /// Mean wall-clock milliseconds per query (0 for an empty batch or
    /// when timing was disabled).
    pub fn mean_time_ms(&self) -> f64 {
        self.per_query(self.elapsed_nanos as f64 / 1e6)
    }

    fn per_query(&self, total: f64) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            total / self.queries as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_stats_are_zero() {
        let s = QueryStats::new();
        assert_eq!(s.rounds, 0);
        assert_eq!(s.collisions_counted, 0);
        assert_eq!(s.candidates_verified, 0);
        assert_eq!(s.io.total(), 0);
        assert_eq!(s.terminated_by, Termination::Exhausted);
        assert!(s.per_round.is_empty());
        assert_eq!(s.elapsed_nanos, 0);
    }

    #[test]
    fn batch_absorbs_and_averages() {
        let mut q1 = QueryStats::new();
        q1.rounds = 3;
        q1.collisions_counted = 100;
        q1.candidates_verified = 10;
        q1.io.reads = 40;
        q1.terminated_by = Termination::T1AtRadius;
        q1.elapsed_nanos = 2_000_000;
        let mut q2 = QueryStats::new();
        q2.rounds = 5;
        q2.collisions_counted = 300;
        q2.candidates_verified = 30;
        q2.io.reads = 80;
        q2.terminated_by = Termination::T2CandidateBudget;
        q2.elapsed_nanos = 4_000_000;

        let mut b = BatchStats::default();
        b.absorb(&q1);
        b.absorb(&q2);
        assert_eq!(b.queries, 2);
        assert_eq!(b.rounds, 8);
        assert_eq!(b.collisions, 400);
        assert_eq!(b.verified, 40);
        assert_eq!((b.t1, b.t2, b.exhausted), (1, 1, 0));
        assert_eq!(b.mean_verified(), 20.0);
        assert_eq!(b.mean_io_reads(), 60.0);
        assert_eq!(b.mean_rounds(), 4.0);
        assert_eq!(b.mean_time_ms(), 3.0);
    }

    fn sample_query_stats(seed: u64) -> QueryStats {
        let mut s = QueryStats::new();
        s.rounds = 1 + (seed % 5) as u32;
        s.final_radius = 1 << (seed % 7);
        s.collisions_counted = 13 * seed + 7;
        s.candidates_verified = (3 * seed + 1) as usize;
        s.candidates_abandoned = (seed % 3) as usize;
        s.candidates_filtered = (seed % 5) as usize;
        s.io.reads = 11 * seed;
        s.io.writes = seed / 2;
        s.terminated_by = match seed % 3 {
            0 => Termination::T1AtRadius,
            1 => Termination::T2CandidateBudget,
            _ => Termination::Exhausted,
        };
        for level in 0..s.rounds {
            s.per_round.push(RoundStats {
                level,
                radius: 1 << level,
                collisions: seed + level as u64,
                verified: (seed % 4) as usize,
                within_c_r: level as usize,
                elapsed_nanos: 100 * seed,
            });
        }
        s.elapsed_nanos = 1_000 * seed + 5;
        s.snapshot_seq = (seed * 17) % 23;
        s.stage =
            StageNanos { hash: 10 * seed, count: 40 * seed + 3, verify: 25 * seed, rank: seed };
        // Spans in canonical (start-ordered) order, as captured live —
        // the merge keeps the union canonical.
        s.spans = vec![SpanRecord {
            name: "round",
            start_ns: 100 * seed,
            dur_ns: 50 * seed + 1,
            depth: 0,
            detail: seed,
        }];
        s
    }

    fn sample_mutation_stats(seed: u64) -> MutationStats {
        MutationStats {
            inserts: 5 * seed + 1,
            deletes: 2 * seed,
            delete_misses: seed % 3,
            batches: seed % 4 + 1,
            wal_records: 7 * seed + 2,
            wal_syncs: seed % 4 + 1,
            wal_bytes: 100 * seed + 31,
            last_seq: (seed * 13) % 29,
        }
    }

    #[test]
    fn query_merge_identity() {
        // A fresh block is the identity on both sides.
        for seed in 0..12 {
            let s = sample_query_stats(seed);
            let mut left = QueryStats::new();
            left.merge(&s);
            assert_eq!(left, s, "fresh.merge(s) != s (seed {seed})");
            let mut right = s.clone();
            right.merge(&QueryStats::new());
            assert_eq!(right, s, "s.merge(fresh) != s (seed {seed})");
        }
    }

    #[test]
    fn query_merge_associative_and_commutative() {
        for seeds in [[1u64, 2, 3], [4, 9, 2], [7, 7, 0], [12, 5, 31]] {
            let [a, b, c] = seeds.map(sample_query_stats);
            // (a ⊕ b) ⊕ c
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ab_c = ab.clone();
            ab_c.merge(&c);
            // a ⊕ (b ⊕ c)
            let mut bc = b.clone();
            bc.merge(&c);
            let mut a_bc = a.clone();
            a_bc.merge(&bc);
            assert_eq!(ab_c, a_bc, "associativity failed for seeds {seeds:?}");
            // b ⊕ a
            let mut ba = b.clone();
            ba.merge(&a);
            assert_eq!(ab, ba, "commutativity failed for seeds {seeds:?}");
        }
    }

    #[test]
    fn query_merge_parallel_semantics() {
        let mut a = sample_query_stats(3); // T1, 4 rounds
        let b = sample_query_stats(4); // T2, 5 rounds
        let (col_a, col_b) = (a.collisions_counted, b.collisions_counted);
        let want_verify_ns = a.stage.verify + b.stage.verify;
        a.merge(&b);
        assert_eq!(a.collisions_counted, col_a + col_b, "work adds");
        assert_eq!(a.rounds, 5, "depth is the max across shards");
        assert_eq!(a.terminated_by, Termination::T2CandidateBudget, "budget hit dominates");
        assert_eq!(a.per_round.len(), 5, "per-round merges level by level");
        assert_eq!(a.stage.verify, want_verify_ns, "stage time adds like work");
        assert_eq!(a.spans.len(), 2, "spans union across shards");
        assert!(
            a.spans.windows(2).all(|w| w[0].start_ns <= w[1].start_ns),
            "merged spans stay start-ordered"
        );
    }

    #[test]
    fn batch_merge_identity_and_associativity() {
        let qs: Vec<QueryStats> = (0..9).map(sample_query_stats).collect();
        let batch_of = |r: std::ops::Range<usize>| {
            let mut b = BatchStats::default();
            for q in &qs[r] {
                b.absorb(q);
            }
            b
        };
        let (a, b, c) = (batch_of(0..3), batch_of(3..5), batch_of(5..9));

        // Identity.
        let mut id = BatchStats::default();
        id.merge(&a);
        assert_eq!(id, a);
        let mut id2 = a.clone();
        id2.merge(&BatchStats::default());
        assert_eq!(id2, a);

        // Associativity: ((a ⊕ b) ⊕ c) == (a ⊕ (b ⊕ c)) == absorb-all.
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
        assert_eq!(ab_c, batch_of(0..9), "merge of partial batches equals one big batch");
        assert_eq!(ab_c.queries, 9);
    }

    #[test]
    fn mutation_merge_identity_associative_commutative() {
        for seeds in [[1u64, 2, 3], [0, 9, 5], [6, 6, 2]] {
            let [a, b, c] = seeds.map(sample_mutation_stats);
            let mut id = MutationStats::default();
            id.merge(&a);
            assert_eq!(id, a, "identity failed for seeds {seeds:?}");
            let mut ab_c = a;
            ab_c.merge(&b);
            ab_c.merge(&c);
            let mut bc = b;
            bc.merge(&c);
            let mut a_bc = a;
            a_bc.merge(&bc);
            assert_eq!(ab_c, a_bc, "associativity failed for seeds {seeds:?}");
            let mut ab = a;
            ab.merge(&b);
            let mut ba = b;
            ba.merge(&a);
            assert_eq!(ab, ba, "commutativity failed for seeds {seeds:?}");
        }
    }

    #[test]
    fn mutation_merge_adds_counts_and_maxes_seq() {
        let mut a = sample_mutation_stats(2);
        let b = sample_mutation_stats(5);
        let (ins_a, ins_b) = (a.inserts, b.inserts);
        let want_seq = a.last_seq.max(b.last_seq);
        a.merge(&b);
        assert_eq!(a.inserts, ins_a + ins_b);
        assert_eq!(a.last_seq, want_seq, "last_seq is a high-water mark, not a sum");
        assert_eq!(a.applied(), a.inserts + a.deletes);
    }

    #[test]
    fn batch_merge_carries_mutations_but_absorb_does_not() {
        let mut a = BatchStats { mutations: sample_mutation_stats(3), ..Default::default() };
        let before = a.mutations;
        a.absorb(&sample_query_stats(4));
        assert_eq!(a.mutations, before, "absorbing a query must not touch write counters");
        let b = BatchStats { mutations: sample_mutation_stats(8), ..Default::default() };
        let mut want = before;
        want.merge(&b.mutations);
        a.merge(&b);
        assert_eq!(a.mutations, want);
    }

    #[test]
    fn query_merge_snapshot_seq_is_max() {
        let mut a = QueryStats::new();
        a.snapshot_seq = 7;
        let mut b = QueryStats::new();
        b.snapshot_seq = 3;
        a.merge(&b);
        assert_eq!(a.snapshot_seq, 7);
    }

    #[test]
    fn empty_batch_means_are_zero() {
        let b = BatchStats::default();
        assert_eq!(b.mean_verified(), 0.0);
        assert_eq!(b.mean_io_reads(), 0.0);
        assert_eq!(b.mean_rounds(), 0.0);
        assert_eq!(b.mean_time_ms(), 0.0);
    }
}

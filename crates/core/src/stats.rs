//! Per-query and per-batch cost counters.
//!
//! Every experiment in the paper reports some slice of these: verified
//! candidates (distance computations), page I/O, rounds of virtual
//! rehashing. They are returned alongside the neighbors by every query
//! entry point. The optional observability layer — per-round
//! [`RoundStats`] breakdowns and wall-clock timings — is off by default
//! and enabled through [`crate::engine::SearchOptions`]; batch runs
//! aggregate into [`BatchStats`].

use cc_storage::pagefile::IoStats;

/// Why the query loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// T1: at the end of a round, ≥ k verified candidates lay within
    /// `c·R` of the query.
    T1AtRadius,
    /// T2: `k + β·n` candidates were verified.
    T2CandidateBudget,
    /// The windows covered every table completely (tiny datasets or
    /// pathological configurations); all reachable candidates were seen.
    Exhausted,
}

/// One virtual-rehashing round's share of the work (recorded only when
/// [`crate::engine::SearchOptions::per_round`] is set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundStats {
    /// Level index (radius = c^level), starting at 0.
    pub level: u32,
    /// Search radius of this round.
    pub radius: i64,
    /// Collision-count increments performed this round (= entries newly
    /// covered by the window growth of this round).
    pub collisions: u64,
    /// Candidates verified this round.
    pub verified: usize,
    /// Verified candidates (cumulative) within `c·R·base_radius` at the
    /// end of this round — the T1 progress measure.
    pub within_c_r: usize,
    /// Wall-clock nanoseconds spent in this round; 0 unless
    /// [`crate::engine::SearchOptions::timing`] is also set.
    pub elapsed_nanos: u64,
}

/// Cost counters for one c-k-ANN query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryStats {
    /// Virtual-rehashing rounds executed (levels tried).
    pub rounds: u32,
    /// Final search radius `R = c^(rounds-1)` reached.
    pub final_radius: i64,
    /// Total collision-count increments performed.
    pub collisions_counted: u64,
    /// Objects whose true distance was computed (= frequent objects).
    pub candidates_verified: usize,
    /// Page I/O (zero in memory mode).
    pub io: IoStats,
    /// Which condition stopped the loop.
    pub terminated_by: Termination,
    /// Per-round breakdown; empty unless
    /// [`crate::engine::SearchOptions::per_round`] was set.
    pub per_round: Vec<RoundStats>,
    /// Wall-clock nanoseconds for the whole query; 0 unless
    /// [`crate::engine::SearchOptions::timing`] was set.
    pub elapsed_nanos: u64,
}

impl QueryStats {
    /// A zeroed stats block (start of a query).
    pub fn new() -> Self {
        Self {
            rounds: 0,
            final_radius: 1,
            collisions_counted: 0,
            candidates_verified: 0,
            io: IoStats::default(),
            terminated_by: Termination::Exhausted,
            per_round: Vec::new(),
            elapsed_nanos: 0,
        }
    }
}

impl Default for QueryStats {
    fn default() -> Self {
        Self::new()
    }
}

/// Aggregated cost counters over a set of queries, built by folding
/// [`QueryStats`] via [`BatchStats::absorb`]. The batch executor
/// ([`crate::engine::run_query_batch`]) returns one per batch; bench
/// code consumes these instead of hand-folding counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchStats {
    /// Queries aggregated.
    pub queries: usize,
    /// Total rounds across all queries.
    pub rounds: u64,
    /// Total collision-count increments.
    pub collisions: u64,
    /// Total candidates verified.
    pub verified: u64,
    /// Total page I/O: per-query verification charges plus (for batch
    /// runs) the store's table-read delta over the whole batch.
    pub io: IoStats,
    /// Queries that stopped via T1.
    pub t1: usize,
    /// Queries that stopped via T2.
    pub t2: usize,
    /// Queries that exhausted their windows.
    pub exhausted: usize,
    /// Wall-clock nanoseconds: sum of per-query times when absorbed
    /// sequentially, or the whole-batch wall time from the parallel
    /// executor (with [`crate::engine::SearchOptions::timing`]).
    pub elapsed_nanos: u64,
}

impl BatchStats {
    /// Fold one query's counters into the aggregate.
    pub fn absorb(&mut self, s: &QueryStats) {
        self.queries += 1;
        self.rounds += s.rounds as u64;
        self.collisions += s.collisions_counted;
        self.verified += s.candidates_verified as u64;
        self.io.reads += s.io.reads;
        self.io.writes += s.io.writes;
        match s.terminated_by {
            Termination::T1AtRadius => self.t1 += 1,
            Termination::T2CandidateBudget => self.t2 += 1,
            Termination::Exhausted => self.exhausted += 1,
        }
        self.elapsed_nanos += s.elapsed_nanos;
    }

    /// Mean verified candidates per query (0 for an empty batch).
    pub fn mean_verified(&self) -> f64 {
        self.per_query(self.verified as f64)
    }

    /// Mean page reads per query (0 for an empty batch).
    pub fn mean_io_reads(&self) -> f64 {
        self.per_query(self.io.reads as f64)
    }

    /// Mean rounds per query (0 for an empty batch).
    pub fn mean_rounds(&self) -> f64 {
        self.per_query(self.rounds as f64)
    }

    /// Mean wall-clock milliseconds per query (0 for an empty batch or
    /// when timing was disabled).
    pub fn mean_time_ms(&self) -> f64 {
        self.per_query(self.elapsed_nanos as f64 / 1e6)
    }

    fn per_query(&self, total: f64) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            total / self.queries as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_stats_are_zero() {
        let s = QueryStats::new();
        assert_eq!(s.rounds, 0);
        assert_eq!(s.collisions_counted, 0);
        assert_eq!(s.candidates_verified, 0);
        assert_eq!(s.io.total(), 0);
        assert_eq!(s.terminated_by, Termination::Exhausted);
        assert!(s.per_round.is_empty());
        assert_eq!(s.elapsed_nanos, 0);
    }

    #[test]
    fn batch_absorbs_and_averages() {
        let mut q1 = QueryStats::new();
        q1.rounds = 3;
        q1.collisions_counted = 100;
        q1.candidates_verified = 10;
        q1.io.reads = 40;
        q1.terminated_by = Termination::T1AtRadius;
        q1.elapsed_nanos = 2_000_000;
        let mut q2 = QueryStats::new();
        q2.rounds = 5;
        q2.collisions_counted = 300;
        q2.candidates_verified = 30;
        q2.io.reads = 80;
        q2.terminated_by = Termination::T2CandidateBudget;
        q2.elapsed_nanos = 4_000_000;

        let mut b = BatchStats::default();
        b.absorb(&q1);
        b.absorb(&q2);
        assert_eq!(b.queries, 2);
        assert_eq!(b.rounds, 8);
        assert_eq!(b.collisions, 400);
        assert_eq!(b.verified, 40);
        assert_eq!((b.t1, b.t2, b.exhausted), (1, 1, 0));
        assert_eq!(b.mean_verified(), 20.0);
        assert_eq!(b.mean_io_reads(), 60.0);
        assert_eq!(b.mean_rounds(), 4.0);
        assert_eq!(b.mean_time_ms(), 3.0);
    }

    #[test]
    fn empty_batch_means_are_zero() {
        let b = BatchStats::default();
        assert_eq!(b.mean_verified(), 0.0);
        assert_eq!(b.mean_io_reads(), 0.0);
        assert_eq!(b.mean_rounds(), 0.0);
        assert_eq!(b.mean_time_ms(), 0.0);
    }
}

//! Property test for the sharded merge path: a 4-shard
//! [`ShardedEngine`] must return exactly the top-k of a single
//! unsharded [`C2lshIndex`] over the same data — same ids, same
//! distances under `f64::total_cmp`.
//!
//! The equality regime: shards share the unsharded index's hash family
//! and `(m, l)` (forced from the total n inside `ShardedEngine::build`)
//! and T2 is disabled (`β·n ≥ n`), so per-object collision counts —
//! and with them every round's verified set and the T1/exhaustion
//! decisions — are independent of the order in which the shard tables
//! are scanned.

use c2lsh::{Beta, C2lshConfig, C2lshIndex, ShardedData, ShardedEngine};
use cc_vector::dataset::Dataset;
use proptest::prelude::*;

fn clustered_dataset() -> impl Strategy<Value = Dataset> {
    (8usize..120, 2usize..12, 0u64..1000).prop_map(|(n, d, seed)| {
        cc_vector::gen::generate(
            cc_vector::gen::Distribution::GaussianMixture {
                clusters: 4,
                spread: 0.05,
                scale: 10.0,
            },
            n,
            d,
            seed,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn four_shards_match_single_index(
        data in clustered_dataset(),
        k in 1usize..8,
        qi in 0usize..120,
        seed in 0u64..100,
    ) {
        let n = data.len();
        let cfg = C2lshConfig::builder()
            .bucket_width(1.0)
            .seed(seed)
            .beta(Beta::Count(n as u64)) // T2 off: cap k+n can't truncate a scan
            .build();
        let single = C2lshIndex::build(&data, &cfg);
        let sharded = ShardedData::partition(&data, 4);
        let engine = ShardedEngine::build(&sharded, &cfg);

        let q = data.get(qi % n);
        let (want, want_stats) = single.query(q, k);
        let (got, got_stats) = engine.query(q, k);

        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.id, w.id);
            prop_assert!(
                g.dist.total_cmp(&w.dist).is_eq(),
                "distance mismatch for id {}: {} vs {}", g.id, g.dist, w.dist
            );
        }
        // The loop itself must agree, not just the ranking.
        prop_assert_eq!(got_stats.rounds, want_stats.rounds);
        prop_assert_eq!(got_stats.collisions_counted, want_stats.collisions_counted);
        prop_assert_eq!(got_stats.candidates_verified, want_stats.candidates_verified);
    }

    #[test]
    fn shard_count_never_changes_answers(
        data in clustered_dataset(),
        shards in 1usize..8,
        seed in 0u64..100,
    ) {
        let n = data.len();
        prop_assume!(n >= 8);
        let shards = shards.min(n);
        let cfg = C2lshConfig::builder()
            .bucket_width(1.0)
            .seed(seed)
            .beta(Beta::Count(n as u64))
            .build();
        let single = C2lshIndex::build(&data, &cfg);
        let sharded = ShardedData::partition(&data, shards);
        let engine = ShardedEngine::build(&sharded, &cfg);
        let q = data.get(n / 2);
        prop_assert_eq!(engine.query(q, 3).0, single.query(q, 3).0);
    }
}

//! Property tests for index persistence: round-trips preserve query
//! behavior, and malformed input — truncations at every byte boundary,
//! random corruption, arbitrary garbage — always surfaces as a
//! [`PersistError`], never as a panic.

use c2lsh::{load_index, save_index, C2lshConfig, C2lshIndex, PersistError};
use cc_vector::dataset::Dataset;
use proptest::prelude::*;

fn small_dataset() -> impl Strategy<Value = Dataset> {
    (5usize..60, 2usize..8, 0u64..1000).prop_map(|(n, d, seed)| {
        cc_vector::gen::generate(
            cc_vector::gen::Distribution::GaussianMixture {
                clusters: 4,
                spread: 0.05,
                scale: 10.0,
            },
            n,
            d,
            seed,
        )
    })
}

fn cfg(seed: u64) -> C2lshConfig {
    C2lshConfig::builder().bucket_width(1.0).seed(seed).build()
}

/// Truncation at *every* byte boundary must report `Malformed` —
/// exhaustive, so a deterministic test rather than a sampled property.
#[test]
fn truncation_at_every_boundary_is_malformed() {
    let data = cc_vector::gen::generate(
        cc_vector::gen::Distribution::GaussianMixture { clusters: 4, spread: 0.05, scale: 10.0 },
        30,
        4,
        7,
    );
    let idx = C2lshIndex::build(&data, &cfg(7));
    let blob = save_index(&idx);
    for len in 0..blob.len() {
        match load_index(&data, &blob[..len]) {
            Err(PersistError::Malformed(_)) => {}
            other => {
                panic!("truncation to {len}/{} bytes must be Malformed, got {other:?}", blob.len())
            }
        }
    }
    assert!(load_index(&data, &blob).is_ok(), "the untruncated blob must load");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn round_trip_preserves_queries(data in small_dataset(), seed in 0u64..100, k in 1usize..6) {
        let idx = C2lshIndex::build(&data, &cfg(seed));
        let blob = save_index(&idx);
        let loaded = load_index(&data, &blob).unwrap();
        prop_assert_eq!(loaded.params().m, idx.params().m);
        prop_assert_eq!(loaded.params().l, idx.params().l);
        for qi in [0, data.len() / 2, data.len() - 1] {
            let q = data.get(qi);
            prop_assert_eq!(idx.query(q, k).0, loaded.query(q, k).0, "query {}", qi);
        }
    }

    #[test]
    fn corruption_errors_instead_of_panicking(
        data in small_dataset(),
        flips in proptest::collection::vec((0usize..usize::MAX, 1u8..255), 1..8),
    ) {
        let idx = C2lshIndex::build(&data, &cfg(3));
        let mut blob = save_index(&idx);
        for (pos, mask) in flips {
            let pos = pos % blob.len();
            blob[pos] ^= mask;
        }
        // The property is panic-freedom: corruption is (nearly always)
        // detected as an Err, and in the measure-zero case where flips
        // cancel in the checksum, loading still must not panic.
        let _ = load_index(&data, &blob);
    }

    #[test]
    fn arbitrary_garbage_never_panics(
        data in small_dataset(),
        garbage in proptest::collection::vec(0u8..255, 0..256),
    ) {
        prop_assert!(load_index(&data, &garbage).is_err());
    }
}

//! Property tests for index persistence: round-trips preserve query
//! behavior, and malformed input — truncations at every byte boundary,
//! random corruption, arbitrary garbage — always surfaces as a
//! [`PersistError`], never as a panic.
//!
//! The second half covers the crash-consistency story: a WAL-backed
//! [`MutableIndex`] killed at *any* byte offset of its log recovers
//! exactly the acknowledged prefix of mutations — never a torn record,
//! never a reordering, and (when the kill falls on a record boundary or
//! beyond) never a lost ack.

use c2lsh::{
    load_dynamic, load_index, save_dynamic, save_index, C2lshConfig, C2lshIndex, DynamicIndex,
    MutableIndex, MutationAck, MutationOp, PersistError, PointMeta,
};
use cc_storage::wal::scratch_dir;
use cc_storage::FailpointFile;
use cc_vector::dataset::Dataset;
use proptest::prelude::*;

fn small_dataset() -> impl Strategy<Value = Dataset> {
    (5usize..60, 2usize..8, 0u64..1000).prop_map(|(n, d, seed)| {
        cc_vector::gen::generate(
            cc_vector::gen::Distribution::GaussianMixture {
                clusters: 4,
                spread: 0.05,
                scale: 10.0,
            },
            n,
            d,
            seed,
        )
    })
}

fn cfg(seed: u64) -> C2lshConfig {
    C2lshConfig::builder().bucket_width(1.0).seed(seed).build()
}

/// Truncation at *every* byte boundary must report `Malformed` —
/// exhaustive, so a deterministic test rather than a sampled property.
#[test]
fn truncation_at_every_boundary_is_malformed() {
    let data = cc_vector::gen::generate(
        cc_vector::gen::Distribution::GaussianMixture { clusters: 4, spread: 0.05, scale: 10.0 },
        30,
        4,
        7,
    );
    let idx = C2lshIndex::build(&data, &cfg(7));
    let blob = save_index(&idx);
    for len in 0..blob.len() {
        match load_index(&data, &blob[..len]) {
            Err(PersistError::Malformed(_)) => {}
            other => {
                panic!("truncation to {len}/{} bytes must be Malformed, got {other:?}", blob.len())
            }
        }
    }
    assert!(load_index(&data, &blob).is_ok(), "the untruncated blob must load");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn round_trip_preserves_queries(data in small_dataset(), seed in 0u64..100, k in 1usize..6) {
        let idx = C2lshIndex::build(&data, &cfg(seed));
        let blob = save_index(&idx);
        let loaded = load_index(&data, &blob).unwrap();
        prop_assert_eq!(loaded.params().m, idx.params().m);
        prop_assert_eq!(loaded.params().l, idx.params().l);
        for qi in [0, data.len() / 2, data.len() - 1] {
            let q = data.get(qi);
            prop_assert_eq!(idx.query(q, k).0, loaded.query(q, k).0, "query {}", qi);
        }
    }

    #[test]
    fn corruption_errors_instead_of_panicking(
        data in small_dataset(),
        flips in proptest::collection::vec((0usize..usize::MAX, 1u8..255), 1..8),
    ) {
        let idx = C2lshIndex::build(&data, &cfg(3));
        let mut blob = save_index(&idx);
        for (pos, mask) in flips {
            let pos = pos % blob.len();
            blob[pos] ^= mask;
        }
        // The property is panic-freedom: corruption is (nearly always)
        // detected as an Err, and in the measure-zero case where flips
        // cancel in the checksum, loading still must not panic.
        let _ = load_index(&data, &blob);
    }

    #[test]
    fn arbitrary_garbage_never_panics(
        data in small_dataset(),
        garbage in proptest::collection::vec(0u8..255, 0..256),
    ) {
        prop_assert!(load_index(&data, &garbage).is_err());
    }
}

// ---------------------------------------------------------------------------
// Crash consistency: WAL-backed MutableIndex vs kill-at-any-offset.
// ---------------------------------------------------------------------------

/// A randomized mutation script: `(kind, payload)` where `kind == 0`
/// is a delete aimed at `payload % (ids assigned so far + 1)` — it may
/// hit a live object, an already-deleted one, or the not-yet-assigned
/// id bound — and any other kind is an insert whose vector is derived
/// deterministically from `payload`.
fn mutation_script() -> impl Strategy<Value = Vec<(u8, u64)>> {
    proptest::collection::vec((0u8..4, 0u64..1_000_000), 1..48)
}

/// Expand a script into concrete ops for an index of dimension `dim`.
fn materialize(script: &[(u8, u64)], dim: usize) -> Vec<MutationOp> {
    let mut ops = Vec::with_capacity(script.len());
    let mut inserted = 0u64;
    for &(kind, payload) in script {
        if kind == 0 {
            ops.push(MutationOp::Delete { oid: (payload % (inserted + 1)) as u32 });
        } else {
            let mut s = payload.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(inserted);
            let vector = (0..dim)
                .map(|_| {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    ((s >> 40) as f32) / 1000.0
                })
                .collect();
            // Roughly half the inserts carry a non-default payload, so
            // both WAL insert opcodes appear in every recovered log.
            let meta = if payload % 2 == 0 {
                PointMeta::default()
            } else {
                PointMeta::new(payload | 1, (payload >> 3) as u32)
            };
            ops.push(MutationOp::Insert { vector, meta });
            inserted += 1;
        }
    }
    ops
}

/// On-disk size of the WAL record a logged op produces:
/// `u32 len | u64 seq | u8 op | body | u32 crc`.
fn record_bytes(op: &MutationOp) -> u64 {
    match op {
        // op 1 body: u32 oid | u32 dim | dim × f32
        MutationOp::Insert { vector, meta } if *meta == PointMeta::default() => {
            4 + 8 + 1 + 4 + 4 + 4 * vector.len() as u64 + 4
        }
        // op 3 body: u32 oid | u64 tag | u32 label | u32 dim | dim × f32
        MutationOp::Insert { vector, .. } => 4 + 8 + 1 + 4 + 12 + 4 + 4 * vector.len() as u64 + 4,
        // body: u32 oid
        MutationOp::Delete { .. } => 4 + 8 + 1 + 4 + 4,
    }
}

fn dyn_cfg(seed: u64) -> C2lshConfig {
    C2lshConfig::builder().bucket_width(1.0).seed(seed).build()
}

const EXPECTED_N: usize = 64;

/// Apply `ops` in acked batches against a durable [`MutableIndex`] in
/// `dir`, returning the sub-sequence of ops that produced WAL records
/// (inserts and *found* deletes — misses are acked but never logged).
fn run_acked(
    dir: &std::path::Path,
    dim: usize,
    cfg: &C2lshConfig,
    ops: &[MutationOp],
) -> Vec<MutationOp> {
    let index = MutableIndex::open(dir, dim, EXPECTED_N, cfg).unwrap();
    let mut logged = Vec::new();
    for chunk in ops.chunks(5) {
        let (acks, _) = index.apply_batch(chunk).unwrap();
        for (op, ack) in chunk.iter().zip(&acks) {
            match ack {
                MutationAck::Inserted { .. } => logged.push(op.clone()),
                MutationAck::Deleted { found: true, .. } => logged.push(op.clone()),
                MutationAck::Deleted { found: false, .. } => {}
            }
        }
    }
    logged
}

/// The reference state after replaying the first `k` logged ops onto a
/// fresh index: slot-for-slot what recovery must reconstruct.
fn reference_after(dim: usize, cfg: &C2lshConfig, logged: &[MutationOp], k: usize) -> DynamicIndex {
    let mut reference = DynamicIndex::new(dim, EXPECTED_N, cfg);
    for op in &logged[..k] {
        match op {
            MutationOp::Insert { vector, meta } => {
                reference.insert_with_meta(vector.clone(), *meta);
            }
            MutationOp::Delete { oid } => {
                assert!(reference.delete(*oid), "logged deletes always hit on prefix replay");
            }
        }
    }
    reference
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// THE crash-safety property: acknowledge a random mutation history,
    /// kill the process (drop), cut the log at an arbitrary byte offset,
    /// and recovery must land on *exactly* the prefix of logged records
    /// that fit entirely before the cut — computed independently from
    /// the wire-format record sizes, not trusted from the recovered
    /// index.
    #[test]
    fn wal_cut_at_any_offset_recovers_exactly_the_acked_prefix(
        script in mutation_script(),
        dim in 2usize..5,
        seed in 0u64..50,
        cut_sel in 0u64..1_000_000,
    ) {
        let dir = scratch_dir("core-wal-cut");
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = dyn_cfg(seed);
        let ops = materialize(&script, dim);
        let logged = run_acked(&dir, dim, &cfg, &ops);

        let wal = FailpointFile::new(dir.join(c2lsh::mutable::WAL_FILE));
        let size = wal.size_bytes().unwrap();
        let total: u64 = cc_storage::wal::WAL_HEADER_BYTES
            + logged.iter().map(record_bytes).sum::<u64>();
        prop_assert_eq!(size, total, "every logged record is exactly its framed size");

        let cut = cut_sel % (size + 1);
        wal.truncate_at(cut).unwrap();

        // Expected surviving prefix: records wholly before the cut.
        let mut offset = cc_storage::wal::WAL_HEADER_BYTES;
        let mut expect_k = 0usize;
        for op in &logged {
            offset += record_bytes(op);
            if offset > cut {
                break;
            }
            expect_k += 1;
        }

        let recovered = MutableIndex::open(&dir, dim, EXPECTED_N, &cfg).unwrap();
        prop_assert_eq!(recovered.last_seq(), expect_k as u64,
            "sequence numbers are dense, so last_seq is the prefix length");
        if cut == size {
            prop_assert_eq!(expect_k, logged.len(), "an on-boundary kill loses nothing acked");
        }
        let reference = reference_after(dim, &cfg, &logged, expect_k);
        let (snap, snap_seq) = recovered.snapshot();
        prop_assert_eq!(snap_seq, expect_k as u64);
        prop_assert_eq!(snap.slots(), reference.slots(),
            "recovered object slots must match the acked prefix exactly");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A single flipped bit anywhere in the log must never panic, never
    /// invent state: either open fails loudly (header damage) or it
    /// recovers some prefix of the logged history — verified
    /// slot-for-slot against an independent replay.
    #[test]
    fn wal_bit_flip_recovers_a_prefix_or_fails_loudly(
        script in mutation_script(),
        dim in 2usize..5,
        flip_sel in 0u64..1_000_000,
        bit in 0u8..8,
    ) {
        let dir = scratch_dir("core-wal-flip");
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = dyn_cfg(11);
        let ops = materialize(&script, dim);
        let logged = run_acked(&dir, dim, &cfg, &ops);

        let wal = FailpointFile::new(dir.join(c2lsh::mutable::WAL_FILE));
        let size = wal.size_bytes().unwrap();
        wal.flip_bit(flip_sel % size, bit).unwrap();

        match MutableIndex::open(&dir, dim, EXPECTED_N, &cfg) {
            Err(e) => prop_assert_eq!(e.kind(), std::io::ErrorKind::InvalidData),
            Ok(recovered) => {
                let k = recovered.last_seq() as usize;
                prop_assert!(k <= logged.len(), "recovery can only shrink the history");
                let reference = reference_after(dim, &cfg, &logged, k);
                let (snap, _) = recovered.snapshot();
                prop_assert_eq!(snap.slots(), reference.slots());
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// C2D1 checkpoint round-trip under a random mutation history:
    /// save/load preserves slots, id assignment, and the recorded
    /// sequence number.
    #[test]
    fn dynamic_checkpoint_round_trips_any_mutation_history(
        script in mutation_script(),
        dim in 2usize..6,
        seed in 0u64..50,
    ) {
        let cfg = dyn_cfg(seed);
        let ops = materialize(&script, dim);
        let mut index = DynamicIndex::new(dim, EXPECTED_N, &cfg);
        for op in &ops {
            match op {
                MutationOp::Insert { vector, meta } => {
                    index.insert_with_meta(vector.clone(), *meta);
                }
                MutationOp::Delete { oid } => { index.delete(*oid); }
            }
        }
        let seq = ops.len() as u64;
        let blob = save_dynamic(&index, seq);
        let (loaded, loaded_seq) = load_dynamic(&blob).unwrap();
        prop_assert_eq!(loaded_seq, seq);
        prop_assert_eq!(loaded.slots(), index.slots());
        prop_assert_eq!(loaded.len(), index.len());
        // Live slots keep their payloads; tombstones restore default.
        for (i, (slot, meta)) in index.slots().iter().zip(index.meta_slots()).enumerate() {
            let want = if slot.is_some() { *meta } else { PointMeta::default() };
            prop_assert_eq!(loaded.meta_slots()[i], want, "slot {}", i);
        }
        if !index.is_empty() {
            let q = index.slots().iter().flatten().next().unwrap();
            let (a, _) = index.query(q, 3);
            let (b, _) = loaded.query(q, 3);
            prop_assert_eq!(a, b, "queries agree after a checkpoint round-trip");
        }
    }

    /// Arbitrary garbage fed to the C2D1 loader errors, never panics.
    #[test]
    fn dynamic_garbage_never_panics(
        garbage in proptest::collection::vec(0u8..255, 0..256),
    ) {
        prop_assert!(load_dynamic(&garbage).is_err());
    }
}

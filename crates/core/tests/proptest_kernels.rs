//! Scalar vs SIMD equivalence properties for the kernel pair.
//!
//! Every kernel the machine can run ([`Kernel::all_available`]) is held
//! to the bit-identity contract against the scalar oracle — same
//! distance bits, same `Some`/`None` abandon decision, same projection
//! bits, batched hashing identical to one-query-at-a-time — across
//! dimensions from 1 to 512 including every non-multiple-of-lane
//! remainder. The CI kernel matrix runs this file twice (default and
//! `CC_FORCE_SCALAR=1`); the properties themselves always exercise all
//! kernels explicitly, so the env leg guards the *dispatch* path while
//! the explicit loop guards the *kernels*.

use c2lsh::kernels::{scalar, Kernel, KernelDispatch};
use cc_vector::dataset::Dataset;
use proptest::prelude::*;

fn vec_f32(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-100.0f32..100.0, len)
}

/// Dimensions biased toward lane boundaries (1..=33 covers every
/// remainder of the 8/16-wide loops twice) but reaching 512.
fn dim() -> impl Strategy<Value = usize> {
    (0u32..4, 1usize..34, 34usize..513)
        .prop_map(|(sel, small, big)| if sel < 3 { small } else { big })
}

fn available() -> Vec<KernelDispatch> {
    Kernel::all_available()
        .into_iter()
        .map(|k| KernelDispatch::new(k).expect("listed as available"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn distance_matches_scalar_bitwise_and_abandons_identically(
        (a, b, frac) in dim().prop_flat_map(|d| (vec_f32(d), vec_f32(d), 0.0f64..1.5))
    ) {
        let exact = cc_vector::dist::euclidean_sq(&a, &b);
        // Spans both regimes: frac < 1 forces abandonment on most
        // inputs, frac > 1 forces completion.
        let bound = exact * frac;
        let oracle = cc_vector::dist::euclidean_sq_bounded(&a, &b, bound);
        for kd in available() {
            let full = kd.euclidean_sq(&a, &b);
            prop_assert_eq!(
                full.to_bits(), exact.to_bits(),
                "{}: full distance diverged ({} vs {})", kd.kernel(), full, exact
            );
            let got = kd.euclidean_sq_bounded(&a, &b, bound);
            prop_assert_eq!(
                got.map(f64::to_bits), oracle.map(f64::to_bits),
                "{}: bounded result diverged ({:?} vs {:?})", kd.kernel(), got, oracle
            );
            // Abandonment is only ever legal when the true distance
            // reached the bound: partial sums of squares are
            // monotonically non-decreasing.
            if got.is_none() {
                prop_assert!(
                    exact >= bound,
                    "{}: abandoned although exact {} < bound {}", kd.kernel(), exact, bound
                );
            }
        }
    }

    #[test]
    fn projection_matches_scalar_bitwise(
        (a, q) in dim().prop_flat_map(|d| (vec_f32(d), vec_f32(d)))
    ) {
        let oracle = scalar::dot(&a, &q);
        for kd in available() {
            let got = kd.dot(&a, &q);
            prop_assert_eq!(
                got.to_bits(), oracle.to_bits(),
                "{}: dot diverged ({} vs {})", kd.kernel(), got, oracle
            );
        }
    }

    #[test]
    fn batched_projection_matches_single_query(
        (d, m, queries) in (dim(), 1usize..25).prop_flat_map(|(d, m)| (
            Just(d),
            Just(m),
            proptest::collection::vec(vec_f32(d), 1..11),
        )),
        matrix_seed in 0u64..u64::MAX,
    ) {
        // Deterministic family from the seed (generating m*d floats via
        // proptest would dominate shrink time).
        let mut state = matrix_seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u32 << 24) as f32 - 0.5
        };
        let matrix: Vec<f32> = (0..m * d).map(|_| next()).collect();
        let offsets: Vec<f64> = (0..m).map(|_| f64::from(next())).collect();
        let flat: Vec<f32> = queries.iter().flatten().copied().collect();
        let ds = Dataset::from_flat(d, flat);

        for kd in available() {
            let mut single = vec![0.0f64; m];
            let mut batch = vec![0.0f64; queries.len() * m];
            kd.project_batch(&matrix, d, &ds, &offsets, &mut batch);
            for (qi, q) in queries.iter().enumerate() {
                kd.project_family(&matrix, d, q, &offsets, &mut single);
                for t in 0..m {
                    prop_assert_eq!(
                        batch[qi * m + t].to_bits(), single[t].to_bits(),
                        "{}: batch diverged at query {} row {}", kd.kernel(), qi, t
                    );
                }
            }
        }
    }
}

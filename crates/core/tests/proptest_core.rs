//! Property-based tests on C2LSH's core machinery: parameter derivation
//! feasibility, hashing determinism, query-result invariants against a
//! linear-scan oracle.

use c2lsh::{C2lshConfig, C2lshIndex, HashFamily};
use cc_vector::dataset::Dataset;
use cc_vector::gt::knn_linear;
use proptest::prelude::*;

fn small_dataset() -> impl Strategy<Value = Dataset> {
    (2usize..40, 2usize..10, 0u64..1000).prop_map(|(n, d, seed)| {
        cc_vector::gen::generate(
            cc_vector::gen::Distribution::GaussianMixture {
                clusters: 4,
                spread: 0.05,
                scale: 10.0,
            },
            n,
            d,
            seed,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn derived_params_always_feasible(
        n in 10usize..2_000_000,
        c in 2u32..5,
        w in 0.5f64..8.0,
        beta_count in 1u64..1000,
    ) {
        let cfg = C2lshConfig::builder()
            .approximation_ratio(c)
            .bucket_width(w)
            .beta(c2lsh::Beta::Count(beta_count))
            .try_build()
            .unwrap();
        let p = c2lsh::FullParams::derive(n, &cfg);
        prop_assert!(p.l >= 1 && p.l <= p.m);
        prop_assert!(p.derived.alpha > p.derived.p2 && p.derived.alpha < p.derived.p1);
        let beta = cfg.beta.resolve(n);
        prop_assert!(cc_math::hoeffding::satisfies_bounds(
            p.derived.p1, p.derived.p2, cfg.delta, beta, p.m, p.l));
    }

    #[test]
    fn hashing_is_deterministic_and_shift_consistent(
        d in 1usize..20,
        seed in 0u64..500,
        coords in proptest::collection::vec(-50.0f32..50.0, 1..20),
    ) {
        let d = d.min(coords.len());
        let v = &coords[..d];
        let cfg = C2lshConfig::builder().bucket_width(1.5).seed(seed).build();
        let f1 = HashFamily::generate(8, d, &cfg);
        let f2 = HashFamily::generate(8, d, &cfg);
        prop_assert_eq!(f1.buckets(v), f2.buckets(v));
        // Nested floor-division consistency at every level: dividing to
        // level r in one step equals dividing level-by-level (this is
        // what makes virtual rehashing windows nest).
        for h in f1.iter() {
            let b = h.bucket(v);
            for lvl in 1..8u32 {
                let r = 2i64.pow(lvl);
                prop_assert_eq!(b.div_euclid(r), b.div_euclid(2).div_euclid(r / 2));
            }
        }
    }

    #[test]
    fn query_results_are_sound(ds in small_dataset(), k in 1usize..8) {
        let cfg = C2lshConfig::builder().bucket_width(1.0).seed(3).build();
        let idx = C2lshIndex::build(&ds, &cfg);
        let q = ds.get(0);
        let (nn, stats) = idx.query(q, k);
        // Results sorted, unique, and distances correct.
        for w in nn.windows(2) {
            prop_assert!(w[0].dist <= w[1].dist);
        }
        let mut ids: Vec<u32> = nn.iter().map(|n| n.id).collect();
        ids.sort_unstable();
        let len_before = ids.len();
        ids.dedup();
        prop_assert_eq!(ids.len(), len_before);
        for n in &nn {
            let want = cc_vector::dist::euclidean(ds.get(n.id as usize), q);
            prop_assert!((n.dist - want).abs() < 1e-9);
        }
        // The query point itself must be found (it is in the dataset and
        // collides with itself in every table).
        prop_assert_eq!(nn[0].id, 0);
        prop_assert_eq!(nn[0].dist, 0.0);
        prop_assert!(stats.candidates_verified >= nn.len());
        // Each returned distance is >= the exact distance at that rank.
        let exact = knn_linear(&ds, q, k);
        for (got, want) in nn.iter().zip(&exact) {
            prop_assert!(got.dist + 1e-12 >= want.dist);
        }
    }

    #[test]
    fn beta_resolution_is_clamped(n in 1usize..1_000_000, count in 0u64..10_000) {
        let beta = c2lsh::Beta::Count(count.max(1)).resolve(n);
        prop_assert!(beta > 0.0 && beta < 1.0);
    }

    /// Early-abandon verification is a pure optimization: neighbors,
    /// ranking, rounds, termination, and the verification count are
    /// bit-identical with it on or off (only `candidates_abandoned`
    /// may differ).
    #[test]
    fn early_abandon_results_bit_identical(
        ds in small_dataset(),
        k in 1usize..8,
        qi in 0usize..40,
        w in 0.5f64..4.0,
    ) {
        let qi = qi % ds.len();
        let cfg = C2lshConfig::builder().bucket_width(w).seed(9).build();
        let idx = C2lshIndex::build(&ds, &cfg);
        let q = ds.get(qi);
        let on = c2lsh::SearchOptions { early_abandon: true, ..Default::default() };
        let off = c2lsh::SearchOptions { early_abandon: false, ..Default::default() };
        let (nn_on, st_on) = idx.query_with(q, k, &on);
        let (nn_off, st_off) = idx.query_with(q, k, &off);
        prop_assert_eq!(nn_on.len(), nn_off.len());
        for (a, b) in nn_on.iter().zip(&nn_off) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.dist.to_bits(), b.dist.to_bits());
        }
        prop_assert_eq!(st_on.rounds, st_off.rounds);
        prop_assert_eq!(st_on.final_radius, st_off.final_radius);
        prop_assert_eq!(st_on.terminated_by, st_off.terminated_by);
        prop_assert_eq!(st_on.candidates_verified, st_off.candidates_verified);
        prop_assert_eq!(st_on.collisions_counted, st_off.collisions_counted);
        prop_assert_eq!(st_off.candidates_abandoned, 0);
        prop_assert!(st_on.candidates_abandoned <= st_on.candidates_verified);
    }
}

//! Reusable top-k accumulator for the verification phase.
//!
//! Every method in this repo ends its query the same way: stream exact
//! distances of candidate objects and keep the `k` nearest. Doing that
//! with a `Vec` + final sort allocates per query and — worse — gives the
//! early-abandon kernel ([`crate::dist::euclidean_sq_bounded`]) no bound
//! to abandon against. [`TopK`] is a small binary max-heap over
//! `(dist_sq, id)` that callers reuse across queries ([`TopK::reset`]
//! keeps the allocation) and that exposes the current k-th best squared
//! distance as an abandonment bound ([`TopK::bound_sq`]).
//!
//! Ordering matches the engine's result ranking: ascending distance with
//! ids breaking ties, compared with `total_cmp` so NaN (which the
//! kernels never produce) would still order deterministically.

use crate::gt::Neighbor;

/// Multiplicative slack applied to the abandonment bound.
///
/// Results are ranked by `dist = dist_sq.sqrt()`, and two *distinct*
/// squared distances can round to the *same* `f64` after `sqrt`. If we
/// abandoned at exactly the k-th best squared distance, a candidate that
/// ties the k-th best after the square root — and would win the tie on
/// id — could be dropped, breaking bit-identity with the non-abandoning
/// path. Inflating the bound by one part in 10⁹ (≫ one ulp, ≪ any
/// meaningful distance gap) keeps every potential tie alive while still
/// abandoning essentially everything the exact bound would.
pub const ABANDON_SLACK: f64 = 1.0 + 1e-9;

/// A bounded max-heap keeping the `k` nearest `(dist_sq, id)` pairs.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    /// Binary max-heap ordered by `(dist_sq, id)` lexicographically:
    /// the root is the current *worst* retained candidate.
    heap: Vec<(f64, u32)>,
}

/// Lexicographic "worse than" on `(dist_sq, id)`: larger distance, or
/// equal distance with larger id.
#[inline(always)]
fn worse(a: (f64, u32), b: (f64, u32)) -> bool {
    match a.0.total_cmp(&b.0) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Less => false,
        std::cmp::Ordering::Equal => a.1 > b.1,
    }
}

impl TopK {
    /// Create an accumulator for the `k` nearest candidates.
    ///
    /// # Panics
    /// Panics if `k == 0` — a zero-capacity top-k has no meaningful
    /// bound and every caller treats `k ≥ 1` as an invariant.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "TopK requires k >= 1");
        TopK { k, heap: Vec::with_capacity(k) }
    }

    /// Clear retained candidates and set a (possibly different) `k`,
    /// keeping the heap allocation for reuse across queries.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn reset(&mut self, k: usize) {
        assert!(k > 0, "TopK requires k >= 1");
        self.k = k;
        self.heap.clear();
        self.heap.reserve(k);
    }

    /// Number of candidates currently retained (`≤ k`).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no candidates are retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// True when `k` candidates are retained, i.e. the bound is active.
    pub fn is_full(&self) -> bool {
        self.heap.len() == self.k
    }

    /// Early-abandonment bound for [`crate::dist::euclidean_sq_bounded`]:
    /// the k-th best squared distance inflated by [`ABANDON_SLACK`], or
    /// `+∞` until `k` candidates have been seen. A candidate abandoned
    /// at this bound is *strictly* farther than the final k-th best even
    /// after the `sqrt` rounding used for ranking, so dropping it cannot
    /// change the result.
    pub fn bound_sq(&self) -> f64 {
        if self.is_full() {
            self.heap[0].0 * ABANDON_SLACK
        } else {
            f64::INFINITY
        }
    }

    /// The current worst retained distance (`sqrt` of the heap root), or
    /// `+∞` when fewer than `k` candidates are retained. This is the
    /// "k-th best so far" that quality-based stopping conditions (e.g.
    /// LSB-tree's) compare against — maintained incrementally instead of
    /// re-sorting the candidate set.
    pub fn worst_dist(&self) -> f64 {
        if self.is_full() {
            self.heap[0].0.sqrt()
        } else {
            f64::INFINITY
        }
    }

    /// Offer a candidate. Returns `true` when it was retained (it is
    /// currently among the `k` nearest), `false` when it lost to the
    /// existing root. Equal distances break toward the smaller id,
    /// matching the engine's final ranking.
    pub fn insert(&mut self, dist_sq: f64, id: u32) -> bool {
        let cand = (dist_sq, id);
        if self.heap.len() < self.k {
            self.heap.push(cand);
            self.sift_up(self.heap.len() - 1);
            return true;
        }
        if !worse(cand, self.heap[0]) {
            self.heap[0] = cand;
            self.sift_down(0);
            return true;
        }
        false
    }

    /// Drain into a `Vec<Neighbor>` sorted ascending by `(dist, id)`,
    /// taking the square root for the reported distance. Leaves the
    /// accumulator empty (allocation retained).
    pub fn drain_sorted(&mut self) -> Vec<Neighbor> {
        let mut out: Vec<Neighbor> =
            self.heap.drain(..).map(|(d_sq, id)| Neighbor::new(id, d_sq.sqrt())).collect();
        out.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        out
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if worse(self.heap[i], self.heap[parent]) {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut worst = i;
            if l < n && worse(self.heap[l], self.heap[worst]) {
                worst = l;
            }
            if r < n && worse(self.heap[r], self.heap[worst]) {
                worst = r;
            }
            if worst == i {
                break;
            }
            self.heap.swap(i, worst);
            i = worst;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_nearest_with_id_tiebreak() {
        let mut tk = TopK::new(3);
        for (d, id) in [(4.0, 1), (1.0, 2), (9.0, 3), (1.0, 0), (4.0, 4)] {
            tk.insert(d, id);
        }
        let got = tk.drain_sorted();
        let ids: Vec<u32> = got.iter().map(|n| n.id).collect();
        // dist_sq 1.0 (ids 0,2) then 4.0 (id 1 beats id 4).
        assert_eq!(ids, vec![0, 2, 1]);
        assert!((got[0].dist - 1.0).abs() < 1e-12);
        assert!((got[2].dist - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bound_infinite_until_full_then_tracks_root() {
        let mut tk = TopK::new(2);
        assert_eq!(tk.bound_sq(), f64::INFINITY);
        tk.insert(5.0, 0);
        assert_eq!(tk.bound_sq(), f64::INFINITY);
        tk.insert(2.0, 1);
        assert!(tk.is_full());
        assert!((tk.bound_sq() - 5.0 * ABANDON_SLACK).abs() < 1e-9);
        assert!((tk.worst_dist() - 5.0f64.sqrt()).abs() < 1e-12);
        // Better candidate evicts the root and tightens the bound.
        assert!(tk.insert(1.0, 2));
        assert!((tk.bound_sq() - 2.0 * ABANDON_SLACK).abs() < 1e-9);
        // Worse candidate is rejected.
        assert!(!tk.insert(99.0, 3));
    }

    #[test]
    fn equal_distance_prefers_smaller_id_at_capacity() {
        let mut tk = TopK::new(1);
        tk.insert(3.0, 7);
        // Same distance, smaller id: must replace.
        assert!(tk.insert(3.0, 2));
        // Same distance, larger id: must lose.
        assert!(!tk.insert(3.0, 9));
        assert_eq!(tk.drain_sorted()[0].id, 2);
    }

    #[test]
    fn reset_reuses_and_resizes() {
        let mut tk = TopK::new(2);
        tk.insert(1.0, 0);
        tk.insert(2.0, 1);
        tk.reset(4);
        assert!(tk.is_empty());
        for id in 0..6 {
            tk.insert(f64::from(id), id);
        }
        assert_eq!(tk.len(), 4);
        let ids: Vec<u32> = tk.drain_sorted().iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn matches_sort_based_selection_on_many_inputs() {
        // Deterministic xorshift stream.
        let mut state = 0x243F6A8885A308D3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f64 / (1u64 << 24) as f64
        };
        for k in [1usize, 3, 10] {
            let mut tk = TopK::new(k);
            let mut all: Vec<(f64, u32)> = Vec::new();
            for id in 0..200u32 {
                // Quantize so duplicate distances actually occur.
                let d = (next() * 32.0).floor();
                tk.insert(d, id);
                all.push((d, id));
            }
            all.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let want: Vec<u32> = all[..k].iter().map(|&(_, id)| id).collect();
            let got: Vec<u32> = tk.drain_sorted().iter().map(|n| n.id).collect();
            assert_eq!(got, want, "k={k}");
        }
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_rejected() {
        TopK::new(0);
    }
}

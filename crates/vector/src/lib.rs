//! # cc-vector — vector substrate for the C2LSH reproduction
//!
//! Everything the experiments need around the raw vectors:
//!
//! * [`dataset`] — a flat, cache-friendly `f32` vector store,
//! * [`dist`] — Euclidean / angular distance kernels,
//! * [`gen`] — seeded synthetic dataset generators (Gaussian mixtures,
//!   uniform cubes, heavy-tailed scales),
//! * [`synth`] — named profiles reproducing the *(n, d)* shapes of the
//!   paper's four real datasets (Audio, Mnist, Color, LabelMe),
//! * [`gt`] — exact k-NN ground truth by (parallel) linear scan,
//! * [`topk`] — reusable top-k accumulator driving early-abandon
//!   verification,
//! * [`io`] — `fvecs`/`ivecs` and a native binary format,
//! * [`workload`] — dataset + queries + ground truth bundles,
//! * [`metrics`] — recall and the paper's *overall ratio* quality metric.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod dist;
pub mod gen;
pub mod gt;
pub mod io;
pub mod metrics;
pub mod scale;
pub mod synth;
pub mod topk;
pub mod workload;

pub use dataset::Dataset;
pub use dist::{euclidean, euclidean_sq, euclidean_sq_bounded};
pub use gt::{ground_truth, Neighbor};
pub use scale::{mean_nn_distance, normalize_to_unit_nn, rescale};
pub use topk::TopK;
pub use workload::Workload;

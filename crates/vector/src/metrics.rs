//! Quality metrics used throughout the evaluation.
//!
//! The paper reports two accuracy measures for c-k-ANN:
//!
//! * **recall** — the fraction of a method's `k` returned objects that
//!   appear among the exact `k` nearest neighbors, and
//! * **overall ratio** — `(1/k) Σ_i dist(o_i, q) / dist(o*_i, q)`, where
//!   `o_i` is the method's i-th returned object (sorted by distance) and
//!   `o*_i` the exact i-th NN. Ratio 1.0 is perfect; the theory bounds it
//!   by `c` per rank with constant probability.

use crate::gt::Neighbor;

/// Recall of `result` against the exact neighbors `truth`.
///
/// Both lists are treated as id sets truncated to `k = truth.len()`.
/// An empty truth set yields recall 1.0 by convention (nothing to find).
pub fn recall(result: &[Neighbor], truth: &[Neighbor]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let hits =
        result.iter().take(truth.len()).filter(|r| truth.iter().any(|t| t.id == r.id)).count();
    hits as f64 / truth.len() as f64
}

/// Overall ratio of `result` against `truth` (both sorted by ascending
/// distance). Pairs with an exact distance of zero contribute ratio 1
/// when the method also returned distance zero, and are skipped when the
/// method's distance is positive (the paper's datasets contain no
/// duplicate-of-query cases; this convention keeps the metric finite).
///
/// When the method returned fewer than `truth.len()` objects, missing
/// ranks are *penalized* with the worst observed finite ratio — an
/// incomplete answer must not look better than a complete one.
pub fn overall_ratio(result: &[Neighbor], truth: &[Neighbor]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let mut ratios = Vec::with_capacity(truth.len());
    for (i, t) in truth.iter().enumerate() {
        if let Some(r) = result.get(i) {
            if t.dist == 0.0 {
                ratios.push(if r.dist == 0.0 { Some(1.0) } else { None });
            } else {
                ratios.push(Some(r.dist / t.dist));
            }
        } else {
            ratios.push(None);
        }
    }
    let worst = ratios.iter().flatten().fold(1.0f64, |a, &b| a.max(b));
    let filled: Vec<f64> = ratios.into_iter().map(|r| r.unwrap_or(worst.max(2.0))).collect();
    filled.iter().sum::<f64>() / filled.len() as f64
}

/// Mean of per-query recalls.
pub fn mean_recall(results: &[Vec<Neighbor>], truths: &[Vec<Neighbor>]) -> f64 {
    assert_eq!(results.len(), truths.len(), "result/truth count mismatch");
    if results.is_empty() {
        return 1.0;
    }
    results.iter().zip(truths).map(|(r, t)| recall(r, t)).sum::<f64>() / results.len() as f64
}

/// Mean of per-query overall ratios.
pub fn mean_ratio(results: &[Vec<Neighbor>], truths: &[Vec<Neighbor>]) -> f64 {
    assert_eq!(results.len(), truths.len(), "result/truth count mismatch");
    if results.is_empty() {
        return 1.0;
    }
    results.iter().zip(truths).map(|(r, t)| overall_ratio(r, t)).sum::<f64>() / results.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(id: u32, dist: f64) -> Neighbor {
        Neighbor::new(id, dist)
    }

    #[test]
    fn perfect_result() {
        let truth = vec![n(3, 1.0), n(7, 2.0)];
        assert_eq!(recall(&truth, &truth), 1.0);
        assert_eq!(overall_ratio(&truth, &truth), 1.0);
    }

    #[test]
    fn half_recall() {
        let truth = vec![n(1, 1.0), n(2, 2.0)];
        let result = vec![n(1, 1.0), n(9, 3.0)];
        assert_eq!(recall(&result, &truth), 0.5);
    }

    #[test]
    fn ratio_reflects_distance_inflation() {
        let truth = vec![n(1, 1.0), n(2, 2.0)];
        let result = vec![n(5, 1.5), n(6, 3.0)];
        // (1.5/1 + 3/2) / 2 = 1.5
        assert!((overall_ratio(&result, &truth) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn short_result_is_penalized() {
        let truth = vec![n(1, 1.0), n(2, 2.0), n(3, 3.0)];
        let full = vec![n(1, 1.0), n(2, 2.0), n(3, 3.0)];
        let short = vec![n(1, 1.0)];
        assert!(overall_ratio(&short, &truth) > overall_ratio(&full, &truth));
        assert!(overall_ratio(&short, &truth) >= 2.0 * 2.0 / 3.0);
    }

    #[test]
    fn zero_distance_truth_handled() {
        let truth = vec![n(1, 0.0), n(2, 2.0)];
        let exact = vec![n(1, 0.0), n(2, 2.0)];
        assert_eq!(overall_ratio(&exact, &truth), 1.0);
        let miss = vec![n(9, 1.0), n(2, 2.0)];
        let r = overall_ratio(&miss, &truth);
        assert!(r.is_finite() && r > 1.0);
    }

    #[test]
    fn empty_truth_conventions() {
        assert_eq!(recall(&[], &[]), 1.0);
        assert_eq!(overall_ratio(&[], &[]), 1.0);
        assert_eq!(mean_recall(&[], &[]), 1.0);
    }

    #[test]
    fn mean_metrics_average_queries() {
        let truths = vec![vec![n(1, 1.0)], vec![n(2, 1.0)]];
        let results = vec![vec![n(1, 1.0)], vec![n(9, 2.0)]];
        assert!((mean_recall(&results, &truths) - 0.5).abs() < 1e-12);
        assert!((mean_ratio(&results, &truths) - 1.5).abs() < 1e-12);
    }
}

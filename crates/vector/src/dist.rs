//! Distance kernels.
//!
//! C2LSH targets Euclidean space; the angular distance is included because
//! the baseline comparison (and follow-up work) occasionally normalizes
//! vectors. The squared-Euclidean kernel is the hot loop of every method's
//! verification phase, so it is written to auto-vectorize: eight
//! independent accumulators over `chunks_exact(8)` (two full SSE lanes /
//! one AVX lane of independent FMA chains).
//!
//! The verification phase of every counting-based method computes the
//! true distance of each frequent candidate only to *rank* it against the
//! current top-k — a candidate whose partial sum already exceeds the k-th
//! best distance can never enter the result, so [`euclidean_sq_bounded`]
//! abandons it early. Partial sums of squares are monotone, which makes
//! the abandon test exact: `None` guarantees the true squared distance
//! exceeds the bound, and any returned `Some` value is **bit-identical**
//! to [`euclidean_sq`] (both run the same accumulator schedule; the
//! bounded variant merely reads the accumulators every
//! [`BOUND_CHECK_DIMS`] dimensions without disturbing them).

/// Accumulator lanes of the squared-distance kernel. This is the
/// canonical schedule every SIMD reimplementation (`c2lsh::kernels`)
/// must reproduce lane-for-lane to stay bit-identical: AVX2 keeps all
/// eight lanes in one 256-bit register, SSE2/NEON keep them as two
/// 128-bit registers.
pub const LANES: usize = 8;

/// Accumulator chunks between two early-abandon bound checks.
pub const CHECK_CHUNKS: usize = 8;

/// The bounded kernel compares its partial sum against the bound at
/// block boundaries of this many dimensions (a whole number of
/// accumulator chunks, so the check never perturbs the accumulation
/// schedule). The final, possibly partial block of the lane-chunked
/// region is also followed by a check — it can spare the tail loop.
///
/// Derived from the kernel's lane count rather than hardcoded: every
/// dispatchable kernel keeps [`LANES`] f32 accumulator lanes (however
/// they are packed into registers) and checks every [`CHECK_CHUNKS`]
/// chunks, so abandon-rate statistics stay comparable across scalar
/// and SIMD kernels.
pub const BOUND_CHECK_DIMS: usize = LANES * CHECK_CHUNKS;

/// Combine the eight lane accumulators into `f64`. Used both for the
/// final sum and for the (read-only) mid-stream bound checks, so bounded
/// and unbounded kernels agree bit-for-bit.
///
/// The reduction pairs lane `i` with lane `i + 4` — the two halves of
/// the accumulator array are exactly the two 4-wide SIMD registers the
/// loop keeps them in, so this shape reduces with one packed add and a
/// horizontal fold. Pairing adjacent lanes instead makes LLVM's SLP
/// vectorizer re-layout the accumulators *inside* the loop (scalar
/// loads + shuffles to build interleaved vectors), which was measured to
/// cost more than early abandonment saves.
#[inline(always)]
fn combine(acc: [f32; LANES]) -> f64 {
    ((acc[0] + acc[4]) as f64 + (acc[2] + acc[6]) as f64)
        + ((acc[1] + acc[5]) as f64 + (acc[3] + acc[7]) as f64)
}

/// One code path for both kernels: `BOUNDED = false` compiles to the
/// straight-line sum, `BOUNDED = true` adds early-abandon checks at
/// [`BOUND_CHECK_DIMS`]-sized block boundaries. The checks live
/// *between* tight inner loops — a branch per accumulator chunk would
/// defeat auto-vectorization and cost more than the abandoned work
/// saves — and only read the accumulators, so the accumulation schedule
/// (and therefore any returned value) is bit-identical across both
/// instantiations.
#[inline(always)]
fn sq_kernel<const BOUNDED: bool>(a: &[f32], b: &[f32], bound: f64) -> Option<f64> {
    let split = a.len() - a.len() % LANES;
    let (ac, ar) = a.split_at(split);
    let (bc, br) = b.split_at(split);
    let mut acc = [0.0f32; LANES];
    if BOUNDED {
        // Full blocks have a compile-time-constant trip count, so the
        // inner loop vectorizes exactly like the unbounded kernel.
        let whole = split - split % BOUND_CHECK_DIMS;
        for (ba, bb) in ac[..whole]
            .chunks_exact(BOUND_CHECK_DIMS)
            .zip(bc[..whole].chunks_exact(BOUND_CHECK_DIMS))
        {
            for (ca, cb) in ba.chunks_exact(LANES).zip(bb.chunks_exact(LANES)) {
                for i in 0..LANES {
                    let d = ca[i] - cb[i];
                    acc[i] += d * d;
                }
            }
            // Partial sums of squares only grow, so exceeding the bound
            // now proves the final value exceeds it too.
            if combine(acc) > bound {
                return None;
            }
        }
        for (ca, cb) in ac[whole..].chunks_exact(LANES).zip(bc[whole..].chunks_exact(LANES)) {
            for i in 0..LANES {
                let d = ca[i] - cb[i];
                acc[i] += d * d;
            }
        }
        if whole < split && combine(acc) > bound {
            return None;
        }
    } else {
        for (ca, cb) in ac.chunks_exact(LANES).zip(bc.chunks_exact(LANES)) {
            for i in 0..LANES {
                let d = ca[i] - cb[i];
                acc[i] += d * d;
            }
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ar.iter().zip(br) {
        let d = x - y;
        tail += d * d;
    }
    Some(combine(acc) + tail as f64)
}

/// Panic with the *caller's* location on dimension mismatch. Every
/// kernel funnels through this so a bad call site (engine verify loop,
/// a baseline, ground truth) is named directly in the panic location
/// instead of pointing into this module.
#[inline(always)]
#[track_caller]
fn check_dims(a: &[f32], b: &[f32]) {
    assert_eq!(
        a.len(),
        b.len(),
        "dimension mismatch: {} vs {} (see panic location for the caller)",
        a.len(),
        b.len()
    );
}

/// Squared Euclidean distance `‖a − b‖²`.
///
/// # Panics
/// Panics when the slices disagree on length (debug and release: a length
/// mismatch silently truncating would corrupt every experiment). The
/// panic location points at the *calling* code (`#[track_caller]`).
#[inline]
#[track_caller]
pub fn euclidean_sq(a: &[f32], b: &[f32]) -> f64 {
    check_dims(a, b);
    // BOUNDED = false never returns None.
    match sq_kernel::<false>(a, b, f64::INFINITY) {
        Some(v) => v,
        None => unreachable!("unbounded kernel cannot abandon"),
    }
}

/// Early-abandoning squared Euclidean distance.
///
/// Returns `Some(‖a − b‖²)` — **bit-identical** to [`euclidean_sq`] —
/// unless a partial sum already exceeds `bound`, in which case it
/// returns `None` (guaranteeing `‖a − b‖² > bound`). The check runs
/// every [`BOUND_CHECK_DIMS`] dimensions, so a returned `Some` value may
/// still exceed `bound` slightly (abandonment is best-effort); callers
/// must treat `Some(v)` as the exact distance and apply their own
/// acceptance test.
///
/// This is the verification-phase hot path: with `bound` set to the
/// current k-th best squared distance, candidates that cannot enter the
/// top-k cost only a prefix of the dimension loop.
///
/// # Panics
/// Panics when the slices disagree on length, reporting the caller's
/// location (`#[track_caller]`).
#[inline]
#[track_caller]
pub fn euclidean_sq_bounded(a: &[f32], b: &[f32], bound: f64) -> Option<f64> {
    check_dims(a, b);
    sq_kernel::<true>(a, b, bound)
}

/// Euclidean distance `‖a − b‖`.
#[inline]
#[track_caller]
pub fn euclidean(a: &[f32], b: &[f32]) -> f64 {
    euclidean_sq(a, b).sqrt()
}

/// Euclidean norm `‖a‖`.
pub fn norm(a: &[f32]) -> f64 {
    a.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>().sqrt()
}

/// Dot product in `f64` accumulation.
#[track_caller]
pub fn dot(a: &[f32], b: &[f32]) -> f64 {
    check_dims(a, b);
    a.iter().zip(b).map(|(&x, &y)| x as f64 * y as f64).sum()
}

/// Angular distance `θ(a, b) = arccos(a·b / (‖a‖‖b‖)) ∈ [0, π]`.
///
/// Returns `0` when either vector is all-zero (the convention used by the
/// normalized-data experiments; a zero vector carries no direction). The
/// cosine is clamped into `[-1, 1]` before `acos` — floating-point
/// round-off on near-parallel vectors can push `a·b / (‖a‖‖b‖)` a hair
/// outside the domain, which would yield `NaN`.
pub fn angular(a: &[f32], b: &[f32]) -> f64 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0).acos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_basics() {
        assert_eq!(euclidean_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean(&[1.0; 17], &[1.0; 17]), 0.0);
    }

    #[test]
    fn handles_non_multiple_of_lane_dims() {
        for d in 1..=19 {
            let a: Vec<f32> = (0..d).map(|i| i as f32).collect();
            let b: Vec<f32> = (0..d).map(|i| (i + 1) as f32).collect();
            // every coordinate differs by exactly 1
            assert!((euclidean_sq(&a, &b) - d as f64).abs() < 1e-6, "dim {d} wrong");
        }
    }

    /// Simple xorshift LCG so tests need no rand dependency.
    fn lcg(seed: u64) -> impl FnMut() -> f32 {
        let mut state = seed;
        move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u32 << 24) as f32 - 0.5
        }
    }

    #[test]
    fn matches_naive_on_random_vectors() {
        let mut next = lcg(0x2545F4914F6CDD1D);
        for d in [1usize, 3, 4, 7, 8, 64, 129, 200] {
            let a: Vec<f32> = (0..d).map(|_| next()).collect();
            let b: Vec<f32> = (0..d).map(|_| next()).collect();
            let naive: f64 = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| {
                    let diff = x as f64 - y as f64;
                    diff * diff
                })
                .sum();
            let fast = euclidean_sq(&a, &b);
            assert!((naive - fast).abs() < 1e-4 * (1.0 + naive), "dim {d}");
        }
    }

    #[test]
    fn bounded_agrees_bitwise_when_not_abandoned() {
        let mut next = lcg(0x9E3779B97F4A7C15);
        for d in [1usize, 8, 63, 64, 65, 128, 300] {
            let a: Vec<f32> = (0..d).map(|_| next()).collect();
            let b: Vec<f32> = (0..d).map(|_| next()).collect();
            let exact = euclidean_sq(&a, &b);
            // Generous bound: never abandons, must be bit-identical.
            let v = euclidean_sq_bounded(&a, &b, f64::INFINITY).unwrap();
            assert_eq!(v.to_bits(), exact.to_bits(), "dim {d}");
            // Bound at the exact value: partials never exceed it.
            let v = euclidean_sq_bounded(&a, &b, exact).unwrap();
            assert_eq!(v.to_bits(), exact.to_bits(), "dim {d} tight bound");
        }
    }

    #[test]
    fn bounded_abandons_far_vectors() {
        let d = 256;
        let a = vec![0.0f32; d];
        let b = vec![10.0f32; d]; // squared distance = 25_600
        assert_eq!(euclidean_sq_bounded(&a, &b, 100.0), None);
        // And a None genuinely means "over the bound".
        assert!(euclidean_sq(&a, &b) > 100.0);
    }

    #[test]
    fn bounded_short_vectors_check_after_the_chunked_region() {
        // d = 32 fits in one (partial) check block: the lane-chunked
        // region is followed by exactly one bound check, so a hopeless
        // candidate is still abandoned...
        let a = vec![1.0f32; 32];
        let b = vec![3.0f32; 32];
        let exact = euclidean_sq(&a, &b); // 32 * 4 = 128
        assert_eq!(euclidean_sq_bounded(&a, &b, 0.5), None);
        // ...while a tight-but-sufficient bound returns the exact value.
        assert_eq!(euclidean_sq_bounded(&a, &b, exact), Some(exact));
        // Below one lane chunk there is no check at all: always exact.
        let a = vec![1.0f32; 7];
        let b = vec![3.0f32; 7];
        let exact = euclidean_sq(&a, &b);
        assert_eq!(euclidean_sq_bounded(&a, &b, 0.5), Some(exact));
    }

    #[test]
    fn angular_distance_properties() {
        let x = [1.0, 0.0];
        let y = [0.0, 1.0];
        let z = [-1.0, 0.0];
        assert!((angular(&x, &y) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((angular(&x, &z) - std::f64::consts::PI).abs() < 1e-12);
        assert!(angular(&x, &x).abs() < 1e-6);
        assert_eq!(angular(&[0.0, 0.0], &x), 0.0);
    }

    #[test]
    fn angular_never_nan_on_near_parallel_vectors() {
        // Scaled copies and tiny perturbations can push the cosine just
        // past 1.0 in floating point; the clamp must keep acos finite.
        let mut next = lcg(0xD1B54A32D192ED03);
        for d in [2usize, 5, 33, 128] {
            let a: Vec<f32> = (0..d).map(|_| next() + 1.0).collect();
            let scaled: Vec<f32> = a.iter().map(|x| x * 3.0).collect();
            let th = angular(&a, &scaled);
            assert!(th.is_finite(), "dim {d}: parallel gave {th}");
            assert!(th.abs() < 1e-3, "dim {d}: parallel angle {th}");
            let anti: Vec<f32> = a.iter().map(|x| -x * 0.5).collect();
            let th = angular(&a, &anti);
            assert!(th.is_finite(), "dim {d}: anti-parallel gave {th}");
            assert!((th - std::f64::consts::PI).abs() < 1e-3);
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dims_panic() {
        euclidean_sq(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn bounded_mismatched_dims_panic() {
        euclidean_sq_bounded(&[1.0], &[1.0, 2.0], 1.0);
    }
}

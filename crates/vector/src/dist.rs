//! Distance kernels.
//!
//! C2LSH targets Euclidean space; the angular distance is included because
//! the baseline comparison (and follow-up work) occasionally normalizes
//! vectors. The squared-Euclidean kernel is the hot loop of every method's
//! verification phase, so it is written to auto-vectorize: four
//! independent accumulators over `chunks_exact(4)`.

/// Squared Euclidean distance `‖a − b‖²`.
///
/// # Panics
/// Panics when the slices disagree on length (debug and release: a length
/// mismatch silently truncating would corrupt every experiment).
#[inline]
pub fn euclidean_sq(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "dimension mismatch: {} vs {}", a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let (ac, ar) = a.split_at(a.len() - a.len() % 4);
    let (bc, br) = b.split_at(b.len() - b.len() % 4);
    for (ca, cb) in ac.chunks_exact(4).zip(bc.chunks_exact(4)) {
        for i in 0..4 {
            let d = ca[i] - cb[i];
            acc[i] += d * d;
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ar.iter().zip(br) {
        let d = x - y;
        tail += d * d;
    }
    (acc[0] + acc[1]) as f64 + (acc[2] + acc[3]) as f64 + tail as f64
}

/// Euclidean distance `‖a − b‖`.
#[inline]
pub fn euclidean(a: &[f32], b: &[f32]) -> f64 {
    euclidean_sq(a, b).sqrt()
}

/// Euclidean norm `‖a‖`.
pub fn norm(a: &[f32]) -> f64 {
    a.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>().sqrt()
}

/// Dot product in `f64` accumulation.
pub fn dot(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter().zip(b).map(|(&x, &y)| x as f64 * y as f64).sum()
}

/// Angular distance `θ(a, b) = arccos(a·b / (‖a‖‖b‖)) ∈ [0, π]`.
///
/// Returns `0` when either vector is all-zero (the convention used by the
/// normalized-data experiments; a zero vector carries no direction).
pub fn angular(a: &[f32], b: &[f32]) -> f64 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0).acos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_basics() {
        assert_eq!(euclidean_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean(&[1.0; 17], &[1.0; 17]), 0.0);
    }

    #[test]
    fn handles_non_multiple_of_four_dims() {
        for d in 1..=13 {
            let a: Vec<f32> = (0..d).map(|i| i as f32).collect();
            let b: Vec<f32> = (0..d).map(|i| (i + 1) as f32).collect();
            // every coordinate differs by exactly 1
            assert!((euclidean_sq(&a, &b) - d as f64).abs() < 1e-6, "dim {d} wrong");
        }
    }

    #[test]
    fn matches_naive_on_random_vectors() {
        // Simple LCG so this test needs no rand dependency.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u32 << 24) as f32 - 0.5
        };
        for d in [1usize, 3, 4, 64, 129] {
            let a: Vec<f32> = (0..d).map(|_| next()).collect();
            let b: Vec<f32> = (0..d).map(|_| next()).collect();
            let naive: f64 = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| {
                    let diff = x as f64 - y as f64;
                    diff * diff
                })
                .sum();
            let fast = euclidean_sq(&a, &b);
            assert!((naive - fast).abs() < 1e-4 * (1.0 + naive), "dim {d}");
        }
    }

    #[test]
    fn angular_distance_properties() {
        let x = [1.0, 0.0];
        let y = [0.0, 1.0];
        let z = [-1.0, 0.0];
        assert!((angular(&x, &y) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((angular(&x, &z) - std::f64::consts::PI).abs() < 1e-12);
        assert!(angular(&x, &x).abs() < 1e-6);
        assert_eq!(angular(&[0.0, 0.0], &x), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dims_panic() {
        euclidean_sq(&[1.0], &[1.0, 2.0]);
    }
}

//! Distance-scale estimation and normalization.
//!
//! LSH parameter theory is stated for a base radius `R = 1`; deployments
//! either normalize the data so the nearest-neighbor scale is ≈ 1 (the
//! paper's protocol) or tell the index the real scale via its
//! `base_radius` knob. Both paths need an estimate of the typical 1-NN
//! distance, provided here.

use crate::dataset::Dataset;
use crate::gt::knn_linear;

/// Estimate the mean 1-NN distance of `data` from up to `sample` evenly
/// spaced probe points (each matched against the full dataset, ignoring
/// its zero self-distance).
///
/// # Panics
/// Panics when the dataset has fewer than two points or every sampled
/// point is a duplicate of another.
pub fn mean_nn_distance(data: &Dataset, sample: usize) -> f64 {
    assert!(data.len() >= 2, "need at least two points");
    let step = (data.len() / sample.max(1)).max(1);
    let mut acc = 0.0;
    let mut cnt = 0usize;
    let mut i = 0;
    while i < data.len() && cnt < sample {
        // 2-NN because the point itself is rank 1 at distance 0.
        let nn = knn_linear(data, data.get(i), 2);
        let d = if nn[0].dist > 0.0 { nn[0].dist } else { nn[1].dist };
        if d > 0.0 {
            acc += d;
            cnt += 1;
        }
        i += step;
    }
    assert!(cnt > 0, "all sampled points were duplicates");
    acc / cnt as f64
}

/// Multiply every coordinate by `factor` (distances scale by the same
/// factor).
pub fn rescale(data: &Dataset, factor: f64) -> Dataset {
    Dataset::from_flat(
        data.dim(),
        data.as_flat().iter().map(|&x| (x as f64 * factor) as f32).collect(),
    )
}

/// Normalize `data` so its mean 1-NN distance is ≈ 1. Returns the
/// normalized dataset and the factor applied (apply the same factor to
/// queries).
pub fn normalize_to_unit_nn(data: &Dataset, sample: usize) -> (Dataset, f64) {
    let unit = mean_nn_distance(data, sample);
    let factor = 1.0 / unit;
    (rescale(data, factor), factor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_nn_ignores_self() {
        let d = Dataset::from_rows(&[vec![0.0], vec![1.0], vec![3.0]]);
        let m = mean_nn_distance(&d, 3);
        // NN distances: 1, 1, 2 -> mean 4/3.
        assert!((m - 4.0 / 3.0).abs() < 1e-6, "m = {m}");
    }

    #[test]
    fn rescale_scales_distances_linearly() {
        let d = Dataset::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0]]);
        let r = rescale(&d, 0.5);
        assert!((crate::dist::euclidean(r.get(0), r.get(1)) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn normalize_reaches_unit_scale() {
        let d =
            crate::gen::generate(crate::gen::Distribution::UniformCube { side: 500.0 }, 300, 6, 1);
        let (norm, factor) = normalize_to_unit_nn(&d, 40);
        assert!(factor > 0.0);
        let unit = mean_nn_distance(&norm, 40);
        assert!((0.5..2.0).contains(&unit), "unit = {unit}");
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn rejects_singleton() {
        let d = Dataset::from_rows(&[vec![1.0]]);
        mean_nn_distance(&d, 1);
    }
}

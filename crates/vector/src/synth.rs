//! Named dataset profiles mirroring the paper's evaluation datasets.
//!
//! The C2LSH evaluation used four real datasets. Their files are not
//! redistributable, so each profile below reproduces the *(n, d)* shape
//! and a qualitatively similar structure with a seeded generator
//! (documented substitution — see `DESIGN.md` §2):
//!
//! | Profile   | n       | d   | paper dataset                      |
//! |-----------|---------|-----|------------------------------------|
//! | `Audio`   | 54,387  | 192 | audio features (LDC SWITCHBOARD)   |
//! | `Mnist`   | 60,000  | 50  | MNIST digits, 50 principal dims    |
//! | `Color`   | 68,040  | 32  | Corel color histograms             |
//! | `LabelMe` | 181,093 | 512 | LabelMe GIST descriptors           |
//!
//! Every profile can be scaled down (`with_scale`) for quick runs and CI;
//! the experiment binaries default to a scale chosen to finish in minutes
//! while keeping n large enough for the asymptotic effects to show.

use crate::dataset::Dataset;
use crate::gen::{generate, Distribution};

/// The four evaluation dataset profiles plus a free-form custom one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Profile {
    /// 54,387 × 192 audio-feature-like vectors (smooth Gaussian mixture).
    Audio,
    /// 60,000 × 50 digit-feature-like vectors (many small clusters).
    Mnist,
    /// 68,040 × 32 color-histogram-like vectors (heavy-tailed mixture).
    Color,
    /// 181,093 × 512 GIST-like vectors (high-d Gaussian mixture).
    LabelMe,
    /// Arbitrary shape for scalability studies.
    Custom {
        /// Number of base vectors.
        n: usize,
        /// Dimensionality.
        d: usize,
    },
}

impl Profile {
    /// Canonical profile name used in experiment tables and file names.
    pub fn name(&self) -> &'static str {
        match self {
            Profile::Audio => "audio",
            Profile::Mnist => "mnist",
            Profile::Color => "color",
            Profile::LabelMe => "labelme",
            Profile::Custom { .. } => "custom",
        }
    }

    /// Paper-scale `(n, d)`.
    pub fn shape(&self) -> (usize, usize) {
        match *self {
            Profile::Audio => (54_387, 192),
            Profile::Mnist => (60_000, 50),
            Profile::Color => (68_040, 32),
            Profile::LabelMe => (181_093, 512),
            Profile::Custom { n, d } => (n, d),
        }
    }

    /// The generator behind this profile.
    pub fn distribution(&self) -> Distribution {
        match self {
            // Broad clusters, moderate contrast: audio features vary
            // smoothly across recordings.
            Profile::Audio => {
                Distribution::GaussianMixture { clusters: 120, spread: 0.035, scale: 10.0 }
            }
            // Ten digit classes with sub-structure: many tight clusters.
            Profile::Mnist => {
                Distribution::GaussianMixture { clusters: 200, spread: 0.02, scale: 255.0 }
            }
            // Histograms: most mass in a few dense regions, some diffuse.
            Profile::Color => Distribution::HeavyTailedMixture {
                clusters: 80,
                spread: 0.008,
                scale: 1.0,
                tail: 1.5,
            },
            // High-d scene descriptors: moderate cluster count, high d.
            Profile::LabelMe => {
                Distribution::GaussianMixture { clusters: 300, spread: 0.03, scale: 1.0 }
            }
            Profile::Custom { .. } => {
                Distribution::GaussianMixture { clusters: 64, spread: 0.03, scale: 10.0 }
            }
        }
    }

    /// Generate the base vectors plus `n_queries` held-out queries (drawn
    /// from the same distribution, never part of the base set), at a size
    /// scale `scale ∈ (0, 1]` of the paper-scale `n`.
    ///
    /// # Panics
    /// Panics when `scale` is outside `(0, 1]` or scaling leaves zero
    /// base vectors.
    pub fn generate_scaled(&self, scale: f64, n_queries: usize, seed: u64) -> (Dataset, Dataset) {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1], got {scale}");
        let (n_full, d) = self.shape();
        let n = ((n_full as f64 * scale) as usize).max(1);
        let total = n + n_queries;
        let all = generate(self.distribution(), total, d, seed);
        let base = all.slice_rows(0, n);
        let queries = all.slice_rows(n, total);
        (base, queries)
    }

    /// Paper-scale generation (`scale = 1`).
    pub fn generate(&self, n_queries: usize, seed: u64) -> (Dataset, Dataset) {
        self.generate_scaled(1.0, n_queries, seed)
    }

    /// All four paper profiles, in the order the paper lists them.
    pub fn paper_profiles() -> [Profile; 4] {
        [Profile::Audio, Profile::Mnist, Profile::Color, Profile::LabelMe]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_the_paper() {
        assert_eq!(Profile::Audio.shape(), (54_387, 192));
        assert_eq!(Profile::Mnist.shape(), (60_000, 50));
        assert_eq!(Profile::Color.shape(), (68_040, 32));
        assert_eq!(Profile::LabelMe.shape(), (181_093, 512));
    }

    #[test]
    fn scaled_generation_splits_queries() {
        let (base, queries) = Profile::Color.generate_scaled(0.01, 10, 5);
        assert_eq!(base.dim(), 32);
        assert_eq!(queries.dim(), 32);
        assert_eq!(queries.len(), 10);
        assert_eq!(base.len(), 680);
    }

    #[test]
    fn generation_is_deterministic() {
        let (a, qa) = Profile::Mnist.generate_scaled(0.002, 3, 11);
        let (b, qb) = Profile::Mnist.generate_scaled(0.002, 3, 11);
        assert_eq!(a, b);
        assert_eq!(qa, qb);
    }

    #[test]
    fn custom_profile_shape() {
        let p = Profile::Custom { n: 1000, d: 24 };
        assert_eq!(p.shape(), (1000, 24));
        let (base, q) = p.generate_scaled(0.5, 4, 0);
        assert_eq!(base.len(), 500);
        assert_eq!(q.len(), 4);
        assert_eq!(base.dim(), 24);
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn rejects_zero_scale() {
        Profile::Audio.generate_scaled(0.0, 1, 0);
    }
}

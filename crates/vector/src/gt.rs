//! Exact k-nearest-neighbor ground truth.
//!
//! Every quality metric in the paper (recall, overall ratio) is defined
//! against the *exact* k-NN of each query, so ground truth must be
//! computed by brute force. Queries are independent, which makes this an
//! embarrassingly parallel scan: the query set is chunked across scoped
//! `crossbeam` threads.

use crate::dataset::Dataset;
use crate::dist::euclidean_sq_bounded;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One neighbor: an object id and its (true, non-squared) distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Object id (row index into the base dataset).
    pub id: u32,
    /// Euclidean distance to the query.
    pub dist: f64,
}

impl Neighbor {
    /// Construct a neighbor record.
    pub fn new(id: u32, dist: f64) -> Self {
        Self { id, dist }
    }
}

/// Max-heap entry so `BinaryHeap` keeps the k smallest distances.
#[derive(PartialEq)]
struct HeapEntry {
    dist_sq: f64,
    id: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist_sq.total_cmp(&other.dist_sq).then_with(|| self.id.cmp(&other.id))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Exact k-NN of a single query by linear scan. Results are sorted by
/// ascending distance, ties broken by id for determinism.
pub fn knn_linear(data: &Dataset, query: &[f32], k: usize) -> Vec<Neighbor> {
    assert!(k > 0, "k must be positive");
    let k = k.min(data.len());
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
    for (i, v) in data.iter().enumerate() {
        // The heap root is the exact k-th best squared distance, so the
        // early-abandon bound is exact here (no ranking by sqrt happens
        // until after selection): a candidate abandoned at this bound
        // exceeds the root and would have been rejected below anyway.
        let bound = if heap.len() < k {
            f64::INFINITY
        } else {
            heap.peek().map_or(f64::INFINITY, |top| top.dist_sq)
        };
        let Some(d) = euclidean_sq_bounded(query, v, bound) else {
            continue;
        };
        if heap.len() < k {
            heap.push(HeapEntry { dist_sq: d, id: i as u32 });
        } else if let Some(top) = heap.peek() {
            if d < top.dist_sq || (d == top.dist_sq && (i as u32) < top.id) {
                heap.pop();
                heap.push(HeapEntry { dist_sq: d, id: i as u32 });
            }
        }
    }
    let mut out: Vec<Neighbor> =
        heap.into_iter().map(|e| Neighbor::new(e.id, e.dist_sq.sqrt())).collect();
    out.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
    out
}

/// Exact k-NN ground truth for a whole query set, in parallel.
///
/// Returns one sorted neighbor list per query, in query order. Thread
/// count defaults to the machine's available parallelism.
pub fn ground_truth(data: &Dataset, queries: &Dataset, k: usize) -> Vec<Vec<Neighbor>> {
    assert_eq!(data.dim(), queries.dim(), "dataset/query dimensionality mismatch");
    let nq = queries.len();
    if nq == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(nq);
    let mut results: Vec<Vec<Neighbor>> = vec![Vec::new(); nq];

    crossbeam::scope(|scope| {
        let chunk = nq.div_ceil(threads);
        for (t, out_chunk) in results.chunks_mut(chunk).enumerate() {
            let lo = t * chunk;
            scope.spawn(move |_| {
                for (off, slot) in out_chunk.iter_mut().enumerate() {
                    *slot = knn_linear(data, queries.get(lo + off), k);
                }
            });
        }
    })
    .expect("ground-truth worker panicked");

    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, Distribution};

    fn toy() -> Dataset {
        Dataset::from_rows(&[vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 2.0], vec![5.0, 5.0]])
    }

    #[test]
    fn knn_orders_by_distance() {
        let ds = toy();
        let nn = knn_linear(&ds, &[0.1, 0.0], 3);
        assert_eq!(nn.len(), 3);
        assert_eq!(nn[0].id, 0);
        assert_eq!(nn[1].id, 1);
        assert_eq!(nn[2].id, 2);
        assert!(nn[0].dist < nn[1].dist && nn[1].dist < nn[2].dist);
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let ds = toy();
        let nn = knn_linear(&ds, &[0.0, 0.0], 100);
        assert_eq!(nn.len(), 4);
    }

    #[test]
    fn exact_self_match() {
        let ds = toy();
        let nn = knn_linear(&ds, &[5.0, 5.0], 1);
        assert_eq!(nn[0].id, 3);
        assert_eq!(nn[0].dist, 0.0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let data = generate(Distribution::UniformCube { side: 1.0 }, 500, 12, 21);
        let queries = generate(Distribution::UniformCube { side: 1.0 }, 33, 12, 22);
        let par = ground_truth(&data, &queries, 7);
        for (qi, got) in par.iter().enumerate() {
            let seq = knn_linear(&data, queries.get(qi), 7);
            assert_eq!(got, &seq, "query {qi} differs");
        }
    }

    #[test]
    fn ties_break_by_id() {
        let ds = Dataset::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![-1.0, 0.0]]);
        let nn = knn_linear(&ds, &[0.0, 0.0], 3);
        assert_eq!(nn.iter().map(|n| n.id).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn empty_query_set() {
        let data = toy();
        let queries = Dataset::empty(2);
        assert!(ground_truth(&data, &queries, 3).is_empty());
    }
}

//! Flat, row-major vector dataset.
//!
//! All indexes in this repository operate on a [`Dataset`]: `n` vectors of
//! a fixed dimensionality `d`, stored contiguously as one `Vec<f32>`.
//! The flat layout keeps the verification step (true distance
//! computations, the dominant query-time cost of every LSH scheme here)
//! sequential in memory.

use std::fmt;

/// A dense collection of `n` vectors in `R^d`, stored row-major.
#[derive(Clone, PartialEq)]
pub struct Dataset {
    dim: usize,
    data: Vec<f32>,
}

impl Dataset {
    /// Create a dataset from a flat buffer. `data.len()` must be a
    /// multiple of `dim`.
    ///
    /// # Panics
    /// Panics when `dim == 0` or the buffer length is not a multiple of
    /// `dim`.
    pub fn from_flat(dim: usize, data: Vec<f32>) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(
            data.len().is_multiple_of(dim),
            "buffer length {} is not a multiple of dim {}",
            data.len(),
            dim
        );
        Self { dim, data }
    }

    /// Create a dataset from a slice of equal-length vectors.
    ///
    /// # Panics
    /// Panics when `rows` is empty or rows disagree on length.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "cannot infer dimension from zero rows");
        let dim = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * dim);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), dim, "row {i} has length {} != {dim}", r.len());
            data.extend_from_slice(r);
        }
        Self::from_flat(dim, data)
    }

    /// An empty dataset of the given dimensionality (for incremental fill).
    pub fn empty(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self { dim, data: Vec::new() }
    }

    /// Append one vector.
    ///
    /// # Panics
    /// Panics if `v.len() != self.dim()`.
    pub fn push(&mut self, v: &[f32]) {
        assert_eq!(v.len(), self.dim, "vector length mismatch");
        self.data.extend_from_slice(v);
    }

    /// Number of vectors.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// `true` when the dataset holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow vector `i`.
    ///
    /// # Panics
    /// Panics when `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// The raw flat buffer (row-major).
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// Iterate over vectors in id order.
    pub fn iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.dim)
    }

    /// Bytes of vector payload (excluding the struct header).
    pub fn payload_bytes(&self) -> usize {
        self.data.len() * core::mem::size_of::<f32>()
    }

    /// Copy a contiguous id range `[lo, hi)` into a new dataset
    /// (used to split generator output into data / query parts).
    pub fn slice_rows(&self, lo: usize, hi: usize) -> Dataset {
        assert!(lo <= hi && hi <= self.len(), "bad range {lo}..{hi}");
        Dataset { dim: self.dim, data: self.data[lo * self.dim..hi * self.dim].to_vec() }
    }
}

impl fmt::Debug for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Dataset").field("n", &self.len()).field("dim", &self.dim).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_rows() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let ds = Dataset::from_rows(&rows);
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.dim(), 2);
        assert_eq!(ds.get(1), &[3.0, 4.0]);
        let collected: Vec<&[f32]> = ds.iter().collect();
        assert_eq!(collected[2], &[5.0, 6.0]);
    }

    #[test]
    fn push_and_slice() {
        let mut ds = Dataset::empty(3);
        assert!(ds.is_empty());
        ds.push(&[1.0, 1.0, 1.0]);
        ds.push(&[2.0, 2.0, 2.0]);
        ds.push(&[3.0, 3.0, 3.0]);
        let mid = ds.slice_rows(1, 2);
        assert_eq!(mid.len(), 1);
        assert_eq!(mid.get(0), &[2.0, 2.0, 2.0]);
        assert_eq!(ds.payload_bytes(), 9 * 4);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn rejects_ragged_flat() {
        Dataset::from_flat(3, vec![1.0; 7]);
    }

    #[test]
    #[should_panic(expected = "row 1 has length")]
    fn rejects_ragged_rows() {
        Dataset::from_rows(&[vec![1.0, 2.0], vec![1.0]]);
    }

    #[test]
    #[should_panic(expected = "vector length mismatch")]
    fn rejects_bad_push() {
        let mut ds = Dataset::empty(2);
        ds.push(&[1.0]);
    }
}

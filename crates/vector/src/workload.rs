//! Workload bundles: base vectors + queries + exact ground truth.
//!
//! Every experiment consumes a [`Workload`]; building one is the single
//! place where ground truth gets computed, so experiment binaries can
//! share it across methods and `k` values (ground truth is computed once
//! at the maximum `k` and truncated per use).

use crate::dataset::Dataset;
use crate::gt::{ground_truth, Neighbor};
use crate::synth::Profile;

/// A fully prepared evaluation workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Human-readable name (profile name by default).
    pub name: String,
    /// Base vectors to index.
    pub data: Dataset,
    /// Held-out query vectors.
    pub queries: Dataset,
    /// Exact `gt_k` nearest neighbors per query.
    pub truth: Vec<Vec<Neighbor>>,
    /// Ground-truth depth.
    pub gt_k: usize,
}

impl Workload {
    /// Build a workload from explicit parts, computing ground truth.
    pub fn from_parts(
        name: impl Into<String>,
        data: Dataset,
        queries: Dataset,
        gt_k: usize,
    ) -> Self {
        let truth = ground_truth(&data, &queries, gt_k);
        Self { name: name.into(), data, queries, truth, gt_k }
    }

    /// Build a workload from a synthetic [`Profile`].
    ///
    /// `scale` shrinks the paper-scale `n` (for quick runs); `n_queries`
    /// follows the paper's protocol of 100 held-out queries; `gt_k` is the
    /// deepest `k` any consumer will ask for.
    pub fn from_profile(
        profile: Profile,
        scale: f64,
        n_queries: usize,
        gt_k: usize,
        seed: u64,
    ) -> Self {
        let (data, queries) = profile.generate_scaled(scale, n_queries, seed);
        Self::from_parts(profile.name(), data, queries, gt_k)
    }

    /// Ground truth truncated to depth `k`.
    ///
    /// # Panics
    /// Panics when `k > self.gt_k` — callers must size `gt_k` up front.
    pub fn truth_at(&self, k: usize) -> Vec<Vec<Neighbor>> {
        assert!(k <= self.gt_k, "requested k={k} exceeds ground-truth depth {}", self.gt_k);
        self.truth.iter().map(|t| t[..k.min(t.len())].to_vec()).collect()
    }

    /// Number of base vectors.
    pub fn n(&self) -> usize {
        self.data.len()
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.data.dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_workload_has_truth() {
        let w = Workload::from_profile(Profile::Color, 0.01, 5, 10, 3);
        assert_eq!(w.queries.len(), 5);
        assert_eq!(w.truth.len(), 5);
        assert_eq!(w.truth[0].len(), 10);
        assert_eq!(w.name, "color");
        // Truth is sorted ascending.
        for t in &w.truth {
            for pair in t.windows(2) {
                assert!(pair[0].dist <= pair[1].dist);
            }
        }
    }

    #[test]
    fn truth_truncation() {
        let w = Workload::from_profile(Profile::Mnist, 0.002, 3, 8, 4);
        let t5 = w.truth_at(5);
        assert!(t5.iter().all(|t| t.len() == 5));
    }

    #[test]
    #[should_panic(expected = "exceeds ground-truth depth")]
    fn deep_truncation_panics() {
        let w = Workload::from_profile(Profile::Mnist, 0.002, 2, 4, 5);
        let _ = w.truth_at(9);
    }
}

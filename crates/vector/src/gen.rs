//! Seeded synthetic dataset generators.
//!
//! The original evaluation ran on four real datasets that are not
//! redistributable. LSH behaviour is governed by (a) the dimensionality,
//! (b) the contrast between nearest-neighbor distances and typical
//! pairwise distances, and (c) local cluster structure — all of which the
//! generators below control. Each generator is fully determined by a
//! `u64` seed, so every experiment in the repository is reproducible
//! bit-for-bit.
//!
//! Normal variates are produced with Box–Muller from `rand`'s uniform
//! source (this repo deliberately avoids `rand_distr`).

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A standard-normal sampler (Box–Muller, caches the spare variate).
#[derive(Debug)]
pub struct NormalSampler {
    spare: Option<f64>,
}

impl NormalSampler {
    /// New sampler with an empty cache.
    pub fn new() -> Self {
        Self { spare: None }
    }

    /// Draw one `N(0, 1)` variate.
    pub fn sample<R: Rng>(&mut self, rng: &mut R) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        // Box–Muller on (0,1] uniforms; `1.0 - gen` keeps u1 > 0.
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }
}

impl Default for NormalSampler {
    fn default() -> Self {
        Self::new()
    }
}

/// Shape of a synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// `clusters` Gaussian blobs with centers uniform in
    /// `[0, scale]^d` and per-coordinate standard deviation
    /// `spread · scale`. Mimics feature datasets with local structure
    /// (Audio, Mnist, LabelMe).
    GaussianMixture {
        /// Number of mixture components.
        clusters: usize,
        /// Relative within-cluster std-dev (fraction of `scale`).
        spread: f64,
        /// Bounding-box side length of the cluster centers.
        scale: f64,
    },
    /// Uniform in `[0, side]^d` — the unstructured stress case where LSH
    /// contrast is worst.
    UniformCube {
        /// Cube side length.
        side: f64,
    },
    /// Gaussian mixture whose per-cluster spreads follow a Pareto law
    /// (`spread_i = spread · u^{-1/tail}`), giving a mix of tight and
    /// diffuse regions like real color-histogram data (Color).
    HeavyTailedMixture {
        /// Number of mixture components.
        clusters: usize,
        /// Base relative spread.
        spread: f64,
        /// Bounding-box side of cluster centers.
        scale: f64,
        /// Pareto tail index; smaller = heavier tail. Must be > 0.
        tail: f64,
    },
}

/// Generate `n` vectors in `R^d` from `dist`, deterministically from
/// `seed`.
///
/// # Panics
/// Panics on `n == 0`, `d == 0`, zero clusters, or non-positive scale
/// parameters.
pub fn generate(dist: Distribution, n: usize, d: usize, seed: u64) -> Dataset {
    assert!(n > 0 && d > 0, "need n > 0 and d > 0");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut normal = NormalSampler::new();
    let mut data = Vec::with_capacity(n * d);

    match dist {
        Distribution::UniformCube { side } => {
            assert!(side > 0.0, "side must be positive");
            for _ in 0..n * d {
                data.push((rng.gen::<f64>() * side) as f32);
            }
        }
        Distribution::GaussianMixture { clusters, spread, scale } => {
            assert!(clusters > 0, "need at least one cluster");
            assert!(spread > 0.0 && scale > 0.0, "spread/scale must be positive");
            let centers = cluster_centers(&mut rng, clusters, d, scale);
            let sigma = spread * scale;
            for i in 0..n {
                let c = &centers[i % clusters];
                for &cj in c.iter().take(d) {
                    data.push((cj + sigma * normal.sample(&mut rng)) as f32);
                }
            }
        }
        Distribution::HeavyTailedMixture { clusters, spread, scale, tail } => {
            assert!(clusters > 0, "need at least one cluster");
            assert!(spread > 0.0 && scale > 0.0 && tail > 0.0, "parameters must be positive");
            let centers = cluster_centers(&mut rng, clusters, d, scale);
            let sigmas: Vec<f64> = (0..clusters)
                .map(|_| {
                    let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
                                                         // Pareto multiplier, capped to keep the box bounded.
                    spread * scale * u.powf(-1.0 / tail).min(20.0)
                })
                .collect();
            for i in 0..n {
                let k = i % clusters;
                for &cj in centers[k].iter().take(d) {
                    data.push((cj + sigmas[k] * normal.sample(&mut rng)) as f32);
                }
            }
        }
    }
    Dataset::from_flat(d, data)
}

fn cluster_centers(rng: &mut StdRng, clusters: usize, d: usize, scale: f64) -> Vec<Vec<f64>> {
    (0..clusters).map(|_| (0..d).map(|_| rng.gen::<f64>() * scale).collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::euclidean;

    #[test]
    fn deterministic_per_seed() {
        let a = generate(Distribution::UniformCube { side: 1.0 }, 50, 8, 42);
        let b = generate(Distribution::UniformCube { side: 1.0 }, 50, 8, 42);
        let c = generate(Distribution::UniformCube { side: 1.0 }, 50, 8, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn shapes_are_respected() {
        let ds = generate(
            Distribution::GaussianMixture { clusters: 5, spread: 0.05, scale: 10.0 },
            123,
            17,
            7,
        );
        assert_eq!(ds.len(), 123);
        assert_eq!(ds.dim(), 17);
    }

    #[test]
    fn normal_sampler_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = NormalSampler::new();
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let x = s.sample(&mut rng);
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn mixture_is_actually_clustered() {
        // Within-cluster distances must be far below typical cross-cluster
        // distances; this is the property every LSH experiment relies on.
        let clusters = 4;
        let ds = generate(
            Distribution::GaussianMixture { clusters, spread: 0.01, scale: 100.0 },
            400,
            32,
            9,
        );
        // Points i and i+clusters share a cluster (round-robin assignment).
        let within = euclidean(ds.get(0), ds.get(clusters));
        let across = euclidean(ds.get(0), ds.get(1));
        assert!(within * 5.0 < across, "within {within} not well below across {across}");
    }

    #[test]
    fn uniform_stays_in_box() {
        let ds = generate(Distribution::UniformCube { side: 3.0 }, 100, 5, 3);
        for v in ds.iter() {
            for &x in v {
                assert!((0.0..=3.0).contains(&x));
            }
        }
    }

    #[test]
    #[should_panic(expected = "need n > 0")]
    fn rejects_empty_request() {
        generate(Distribution::UniformCube { side: 1.0 }, 0, 4, 0);
    }
}

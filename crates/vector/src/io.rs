//! Dataset (de)serialization.
//!
//! Two formats:
//!
//! * **`fvecs`** — the de-facto standard of the ANN benchmarking
//!   community (TEXMEX): each vector is a little-endian `i32` dimension
//!   followed by `d` little-endian `f32`s. Supported so users can load
//!   the *real* Audio/Sift/Gist files if they have them.
//! * **native `ccv1`** — a single header (`magic, n, d`) followed by the
//!   flat payload, with an XOR-fold checksum; faster and self-describing.
//!
//! Both paths go through [`bytes::Buf`]/[`bytes::BufMut`] so the parsing
//! logic is testable in memory without touching the filesystem.

use crate::dataset::Dataset;
use bytes::{Buf, BufMut};
use std::fs;
use std::io;
use std::path::Path;

/// Errors produced by the readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// Structurally invalid content.
    Malformed(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Malformed(m) => write!(f, "malformed dataset file: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

const CCV1_MAGIC: u32 = 0x4343_5631; // "CCV1"

/// Encode a dataset in `fvecs` layout.
pub fn to_fvecs(ds: &Dataset) -> Vec<u8> {
    let d = ds.dim();
    let mut buf = Vec::with_capacity(ds.len() * (4 + 4 * d));
    for v in ds.iter() {
        buf.put_i32_le(d as i32);
        for &x in v {
            buf.put_f32_le(x);
        }
    }
    buf
}

/// Decode an `fvecs` buffer.
pub fn from_fvecs(mut buf: &[u8]) -> Result<Dataset, IoError> {
    if buf.is_empty() {
        return Err(IoError::Malformed("empty fvecs buffer".into()));
    }
    let mut dim: Option<usize> = None;
    let mut data = Vec::new();
    let mut n = 0usize;
    while buf.has_remaining() {
        if buf.remaining() < 4 {
            return Err(IoError::Malformed("truncated vector header".into()));
        }
        let d = buf.get_i32_le();
        if d <= 0 {
            return Err(IoError::Malformed(format!("non-positive dimension {d}")));
        }
        let d = d as usize;
        match dim {
            None => dim = Some(d),
            Some(d0) if d0 != d => {
                return Err(IoError::Malformed(format!(
                    "inconsistent dimensions: {d0} then {d} at vector {n}"
                )))
            }
            _ => {}
        }
        if buf.remaining() < 4 * d {
            return Err(IoError::Malformed(format!("truncated vector {n}")));
        }
        for _ in 0..d {
            data.push(buf.get_f32_le());
        }
        n += 1;
    }
    Ok(Dataset::from_flat(dim.unwrap(), data))
}

/// Encode a dataset in the native `ccv1` layout.
pub fn to_ccv1(ds: &Dataset) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + ds.payload_bytes());
    buf.put_u32_le(CCV1_MAGIC);
    buf.put_u32_le(ds.len() as u32);
    buf.put_u32_le(ds.dim() as u32);
    let mut checksum = 0u32;
    for &x in ds.as_flat() {
        let bits = x.to_bits();
        checksum = checksum.rotate_left(1) ^ bits;
    }
    buf.put_u32_le(checksum);
    for &x in ds.as_flat() {
        buf.put_f32_le(x);
    }
    buf
}

/// Decode a native `ccv1` buffer, verifying magic, size and checksum.
pub fn from_ccv1(mut buf: &[u8]) -> Result<Dataset, IoError> {
    if buf.remaining() < 16 {
        return Err(IoError::Malformed("header too short".into()));
    }
    let magic = buf.get_u32_le();
    if magic != CCV1_MAGIC {
        return Err(IoError::Malformed(format!("bad magic {magic:#010x}")));
    }
    let n = buf.get_u32_le() as usize;
    let d = buf.get_u32_le() as usize;
    let want_sum = buf.get_u32_le();
    if d == 0 {
        return Err(IoError::Malformed("zero dimension".into()));
    }
    if buf.remaining() != 4 * n * d {
        return Err(IoError::Malformed(format!(
            "payload size {} != expected {}",
            buf.remaining(),
            4 * n * d
        )));
    }
    let mut data = Vec::with_capacity(n * d);
    let mut checksum = 0u32;
    for _ in 0..n * d {
        let x = buf.get_f32_le();
        checksum = checksum.rotate_left(1) ^ x.to_bits();
        data.push(x);
    }
    if checksum != want_sum {
        return Err(IoError::Malformed(format!(
            "checksum mismatch: stored {want_sum:#010x}, computed {checksum:#010x}"
        )));
    }
    Ok(Dataset::from_flat(d, data))
}

/// Read a dataset from disk, dispatching on the `.fvecs` extension
/// (anything else is treated as `ccv1`).
pub fn read_dataset(path: &Path) -> Result<Dataset, IoError> {
    let buf = fs::read(path)?;
    if path.extension().is_some_and(|e| e == "fvecs") {
        from_fvecs(&buf)
    } else {
        from_ccv1(&buf)
    }
}

/// Write a dataset to disk in the format implied by the extension.
pub fn write_dataset(path: &Path, ds: &Dataset) -> Result<(), IoError> {
    let buf =
        if path.extension().is_some_and(|e| e == "fvecs") { to_fvecs(ds) } else { to_ccv1(ds) };
    fs::write(path, buf)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::from_rows(&[vec![1.5, -2.0, 0.0], vec![3.25, 4.0, -1.0]])
    }

    #[test]
    fn fvecs_roundtrip() {
        let ds = sample();
        let buf = to_fvecs(&ds);
        assert_eq!(buf.len(), 2 * (4 + 12));
        let back = from_fvecs(&buf).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn ccv1_roundtrip() {
        let ds = sample();
        let back = from_ccv1(&to_ccv1(&ds)).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn fvecs_rejects_truncation() {
        let ds = sample();
        let buf = to_fvecs(&ds);
        assert!(matches!(from_fvecs(&buf[..buf.len() - 3]), Err(IoError::Malformed(_))));
        assert!(matches!(from_fvecs(&buf[..2]), Err(IoError::Malformed(_))));
        assert!(from_fvecs(&[]).is_err());
    }

    #[test]
    fn fvecs_rejects_inconsistent_dims() {
        let mut buf = to_fvecs(&sample());
        let extra = to_fvecs(&Dataset::from_rows(&[vec![1.0, 2.0]]));
        buf.extend_from_slice(&extra);
        let err = from_fvecs(&buf).unwrap_err();
        assert!(err.to_string().contains("inconsistent"), "{err}");
    }

    #[test]
    fn ccv1_detects_corruption() {
        let mut buf = to_ccv1(&sample());
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        let err = from_ccv1(&buf).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn ccv1_rejects_bad_magic_and_size() {
        let mut buf = to_ccv1(&sample());
        buf[0] ^= 0x01;
        assert!(from_ccv1(&buf).unwrap_err().to_string().contains("magic"));
        let buf = to_ccv1(&sample());
        assert!(from_ccv1(&buf[..buf.len() - 4]).unwrap_err().to_string().contains("payload"));
    }

    #[test]
    fn file_roundtrip_both_formats() {
        let dir = std::env::temp_dir();
        let ds = sample();
        for name in ["cc_io_test.fvecs", "cc_io_test.ccv1"] {
            let p = dir.join(name);
            write_dataset(&p, &ds).unwrap();
            let back = read_dataset(&p).unwrap();
            assert_eq!(back, ds, "format {name}");
            let _ = fs::remove_file(&p);
        }
    }
}

//! Property tests for the distance kernels and the top-k accumulator:
//! the early-abandon kernel must agree with the plain kernel bit-for-bit
//! whenever it does not abandon, abandon only above the bound, and the
//! bounded `knn_linear` must stay identical to a naive oracle.

use cc_vector::dataset::Dataset;
use cc_vector::dist::{euclidean_sq, euclidean_sq_bounded};
use cc_vector::gt::knn_linear;
use cc_vector::topk::TopK;
use proptest::prelude::*;

fn vec_pair() -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    (1usize..300).prop_flat_map(|d| {
        (
            proptest::collection::vec(-100.0f32..100.0, d),
            proptest::collection::vec(-100.0f32..100.0, d),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whenever the bounded kernel returns a value, it is bit-identical
    /// to the unbounded kernel — regardless of the bound.
    #[test]
    fn bounded_some_is_bit_identical((a, b) in vec_pair(), frac in 0.0f64..2.0) {
        let exact = euclidean_sq(&a, &b);
        let bound = exact * frac;
        if let Some(v) = euclidean_sq_bounded(&a, &b, bound) {
            prop_assert_eq!(v.to_bits(), exact.to_bits());
        }
    }

    /// The kernel never abandons when the true value is within the
    /// bound (partial sums are monotone, so they can't overshoot a
    /// bound the total respects).
    #[test]
    fn bounded_never_abandons_under_bound((a, b) in vec_pair(), slack in 0.0f64..10.0) {
        let exact = euclidean_sq(&a, &b);
        let v = euclidean_sq_bounded(&a, &b, exact + slack);
        prop_assert_eq!(v.map(f64::to_bits), Some(exact.to_bits()));
    }

    /// `None` is a proof the true value exceeds the bound.
    #[test]
    fn abandonment_implies_over_bound((a, b) in vec_pair(), frac in 0.0f64..1.5) {
        let exact = euclidean_sq(&a, &b);
        let bound = exact * frac;
        if euclidean_sq_bounded(&a, &b, bound).is_none() {
            prop_assert!(exact > bound, "abandoned at bound {bound} but exact = {exact}");
        }
    }

    /// TopK selects exactly what a full sort by (dist_sq, id) selects.
    #[test]
    fn topk_matches_full_sort(
        dists in proptest::collection::vec(0.0f64..64.0, 1..200),
        k in 1usize..12,
    ) {
        // Quantize so ties are common and the id tiebreak is exercised.
        let mut all: Vec<(f64, u32)> = dists
            .iter()
            .enumerate()
            .map(|(i, &d)| (d.floor(), i as u32))
            .collect();
        let mut tk = TopK::new(k);
        for &(d, id) in &all {
            tk.insert(d, id);
        }
        all.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let want: Vec<u32> = all.iter().take(k).map(|&(_, id)| id).collect();
        let got: Vec<u32> = tk.drain_sorted().iter().map(|n| n.id).collect();
        prop_assert_eq!(got, want);
    }

    /// `knn_linear` (which now early-abandons against its heap root)
    /// returns exactly what a naive full-sort scan returns.
    #[test]
    fn knn_linear_matches_naive_oracle(
        rows in proptest::collection::vec(
            proptest::collection::vec(-50.0f32..50.0, 6), 1..60),
        k in 1usize..10,
    ) {
        let ds = Dataset::from_rows(&rows);
        let q = rows[0].iter().map(|x| x + 0.25).collect::<Vec<f32>>();
        let got = knn_linear(&ds, &q, k);

        let mut naive: Vec<(f64, u32)> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| (euclidean_sq(&q, r), i as u32))
            .collect();
        naive.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        naive.truncate(k);

        prop_assert_eq!(got.len(), naive.len());
        for (g, (d_sq, id)) in got.iter().zip(&naive) {
            prop_assert_eq!(g.id, *id);
            prop_assert_eq!(g.dist.to_bits(), d_sq.sqrt().to_bits());
        }
    }
}

//! Micro-benchmark: p-stable hashing throughput and parameter
//! derivation cost.

use c2lsh::{C2lshConfig, FullParams, HashFamily};
use cc_vector::gen::{generate, Distribution};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_hash_string(c: &mut Criterion) {
    let d = 128;
    let data = generate(Distribution::UniformCube { side: 1.0 }, 16, d, 1);
    let cfg = C2lshConfig::default();
    let family = HashFamily::generate(100, d, &cfg);
    let v = data.get(0);
    c.bench_function("hash_string_m100_d128", |b| b.iter(|| family.buckets(black_box(v))));
}

fn bench_derive_params(c: &mut Criterion) {
    let cfg = C2lshConfig::default();
    c.bench_function("derive_params_n60000", |b| {
        b.iter(|| FullParams::derive(black_box(60_000), &cfg))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_hash_string, bench_derive_params
}
criterion_main!(benches);

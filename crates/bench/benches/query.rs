//! Micro-benchmark: c-k-ANN query latency of every method on a fixed
//! clustered dataset (n = 5000, d = 32, k = 10).

use cc_baselines::e2lsh::{E2lsh, E2lshConfig};
use cc_baselines::linear::LinearScan;
use cc_baselines::lsb::{LsbConfig, LsbForest};
use cc_vector::gen::{generate, Distribution};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn data() -> cc_vector::Dataset {
    generate(
        Distribution::GaussianMixture { clusters: 16, spread: 0.015, scale: 10.0 },
        5_000,
        32,
        9,
    )
}

fn bench_queries(c: &mut Criterion) {
    let data = data();
    let q = data.get(123).to_vec();
    let k = 10;
    let mut g = c.benchmark_group("query_n5000_d32_k10");

    let cfg = c2lsh::C2lshConfig::builder().bucket_width(1.0).seed(2).build();
    let c2 = c2lsh::C2lshIndex::build(&data, &cfg);
    g.bench_function("c2lsh", |b| b.iter(|| c2.query(black_box(&q), k)));

    let qa =
        qalsh::Qalsh::build(&data, qalsh::QalshConfig { w: 1.2, seed: 2, ..Default::default() });
    g.bench_function("qalsh", |b| b.iter(|| qa.query(black_box(&q), k)));

    let e2 = E2lsh::build(&data, E2lshConfig { k_funcs: 8, l_tables: 32, w: 1.0, seed: 2 });
    g.bench_function("e2lsh", |b| b.iter(|| e2.query(black_box(&q), k)));

    let lsb = LsbForest::build(
        &data,
        LsbConfig {
            l_trees: 12,
            w: 0.5,
            budget: 200,
            quality_stop: false,
            seed: 2,
            ..Default::default()
        },
    );
    g.bench_function("lsb_forest", |b| b.iter(|| lsb.query(black_box(&q), k)));

    let lin = LinearScan::new(&data);
    g.bench_function("linear_scan", |b| b.iter(|| lin.query(black_box(&q), k)));

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_queries
}
criterion_main!(benches);

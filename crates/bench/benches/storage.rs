//! Micro-benchmark: the storage substrate (B+-tree search, bucket-file
//! window scans, buffer-pool hits).

use cc_storage::bptree::BPlusTree;
use cc_storage::bucket_file::BucketFile;
use cc_storage::buffer::BufferPool;
use cc_storage::page::PageId;
use cc_storage::pagefile::PageFile;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_bptree(c: &mut Criterion) {
    let pairs: Vec<(i64, u32)> = (0..100_000).map(|i| (i as i64, i as u32)).collect();
    let tree = BPlusTree::bulk_load(&pairs);
    c.bench_function("bptree_lower_bound_100k", |b| b.iter(|| tree.lower_bound(black_box(73_421))));
    c.bench_function("bptree_range_scan_1k", |b| {
        b.iter(|| tree.range(black_box(50_000), black_box(51_000)))
    });
}

fn bench_bucket_file(c: &mut Criterion) {
    let mut file = PageFile::new();
    let entries: Vec<(i64, u32)> = (0..100_000).map(|i| ((i / 3) as i64, i as u32)).collect();
    let bf = BucketFile::build(&mut file, &entries);
    c.bench_function("bucket_file_lower_bound_100k", |b| {
        b.iter(|| bf.lower_bound(&file, black_box(12_345)))
    });
    c.bench_function("bucket_file_scan_1k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            bf.scan(&file, 40_000, 41_000, |_, oid| acc += oid as u64);
            acc
        })
    });
}

fn bench_buffer_pool(c: &mut Criterion) {
    let mut file = PageFile::new();
    for _ in 0..256 {
        file.alloc();
    }
    let pool = BufferPool::new(&file, 64);
    c.bench_function("buffer_pool_hit", |b| {
        pool.get(PageId(7));
        b.iter(|| pool.get(black_box(PageId(7))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_bptree, bench_bucket_file, bench_buffer_pool
}
criterion_main!(benches);

//! Micro-benchmark: index construction time of every method on a small
//! clustered dataset (relative numbers mirror the paper's build-time
//! column; absolute scale is set by T3).

use cc_baselines::e2lsh::{E2lsh, E2lshConfig};
use cc_baselines::lsb::{LsbConfig, LsbForest};
use cc_vector::gen::{generate, Distribution};
use criterion::{criterion_group, criterion_main, Criterion};

fn data() -> cc_vector::Dataset {
    generate(
        Distribution::GaussianMixture { clusters: 16, spread: 0.015, scale: 10.0 },
        2_000,
        32,
        5,
    )
}

fn bench_builds(c: &mut Criterion) {
    let data = data();
    let mut g = c.benchmark_group("index_build_n2000_d32");
    g.bench_function("c2lsh", |b| {
        let cfg = c2lsh::C2lshConfig::builder().bucket_width(1.0).seed(1).build();
        b.iter(|| c2lsh::C2lshIndex::build(&data, &cfg))
    });
    g.bench_function("qalsh", |b| {
        let cfg = qalsh::QalshConfig { w: 1.2, seed: 1, ..Default::default() };
        b.iter(|| qalsh::Qalsh::build(&data, cfg))
    });
    g.bench_function("e2lsh", |b| {
        let cfg = E2lshConfig { k_funcs: 8, l_tables: 32, w: 1.0, seed: 1 };
        b.iter(|| E2lsh::build(&data, cfg))
    });
    g.bench_function("lsb_forest", |b| {
        let cfg = LsbConfig { l_trees: 12, w: 0.5, seed: 1, ..Default::default() };
        b.iter(|| LsbForest::build(&data, cfg))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_builds
}
criterion_main!(benches);

//! Micro-benchmark: the distance kernel (the hot loop of every method's
//! verification phase).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn gen(d: usize, seed: u64) -> Vec<f32> {
    let mut s = seed | 1;
    (0..d)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 40) as f32 / (1u32 << 24) as f32
        })
        .collect()
}

fn bench_euclidean(c: &mut Criterion) {
    let mut g = c.benchmark_group("euclidean_sq");
    for d in [32usize, 128, 512] {
        let a = gen(d, 1);
        let b = gen(d, 2);
        g.bench_with_input(BenchmarkId::from_parameter(d), &d, |bench, _| {
            bench.iter(|| cc_vector::dist::euclidean_sq(black_box(&a), black_box(&b)))
        });
    }
    g.finish();
}

fn bench_dot(c: &mut Criterion) {
    let a = gen(128, 3);
    let b = gen(128, 4);
    c.bench_function("dot_128", |bench| {
        bench.iter(|| cc_vector::dist::dot(black_box(&a), black_box(&b)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_euclidean, bench_dot
}
criterion_main!(benches);

//! # cc-bench — experiment harness
//!
//! One runnable binary per table/figure of the C2LSH evaluation (see
//! `DESIGN.md` §3 for the experiment index and `EXPERIMENTS.md` for
//! recorded results). The shared machinery lives here:
//!
//! * [`methods`] — a uniform [`methods::AnnIndex`] facade over C2LSH
//!   (memory + disk), QALSH, E2LSH, rigorous-LSH, LSB-forest and linear
//!   scan,
//! * [`eval`] — run a query set through a method and aggregate recall,
//!   ratio, candidates, I/O and wall-clock time,
//! * [`prep`] — workload preparation with nearest-neighbor-scale
//!   normalization (the paper's datasets are normalized so the theory's
//!   `R = 1` base radius is meaningful),
//! * [`report`] — the machine-readable `BENCH_<tag>.json` schema the
//!   unified `bench run` binary emits, plus the CI regression gate,
//! * [`table`] — aligned console tables plus CSV output under
//!   `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eval;
pub mod methods;
pub mod prep;
pub mod report;
pub mod table;

/// Default experiment scale (fraction of the paper-scale dataset sizes).
/// Override with the `CC_SCALE` environment variable.
pub const DEFAULT_SCALE: f64 = 0.10;

/// Default number of held-out queries (the paper uses 100). Override
/// with `CC_QUERIES`.
pub const DEFAULT_QUERIES: usize = 50;

/// Read an `f64` environment override.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Read a `usize` environment override.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// The scale to run experiments at (`CC_SCALE`, default
/// [`DEFAULT_SCALE`]).
pub fn scale() -> f64 {
    env_f64("CC_SCALE", DEFAULT_SCALE)
}

/// The query count (`CC_QUERIES`, default [`DEFAULT_QUERIES`]).
pub fn queries() -> usize {
    env_usize("CC_QUERIES", DEFAULT_QUERIES)
}

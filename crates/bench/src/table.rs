//! Aligned console tables + CSV output.
//!
//! Every experiment binary prints one or more tables and mirrors them as
//! CSV under `results/` so `EXPERIMENTS.md` can reference stable files.

use std::fs;
use std::path::Path;

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data row was added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }

    /// CSV serialization (headers + rows, comma-separated, quotes around
    /// cells containing commas).
    pub fn to_csv(&self) -> String {
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Write the CSV next to the repo under `results/<name>.csv`.
    pub fn save_csv(&self, name: &str) {
        let dir = Path::new("results");
        if fs::create_dir_all(dir).is_ok() {
            let path = dir.join(format!("{name}.csv"));
            if let Err(e) = fs::write(&path, self.to_csv()) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("[saved {}]", path.display());
            }
        }
    }
}

/// Format an `f64` with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format an `f64` with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Push a standard [`crate::eval::EvalRow`] into a table with the
/// canonical column set.
pub fn push_eval_row(t: &mut Table, dataset: &str, row: &crate::eval::EvalRow) {
    t.row(vec![
        dataset.to_string(),
        row.method.clone(),
        row.k.to_string(),
        f3(row.recall),
        f3(row.ratio),
        f1(row.verified),
        f1(row.io_reads),
        f3(row.time_ms),
        f1(row.index_mib),
    ]);
}

/// The canonical headers matching [`push_eval_row`].
pub const EVAL_HEADERS: [&str; 9] =
    ["dataset", "method", "k", "recall", "ratio", "verified", "io", "ms", "MiB"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "long_header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "x".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long_header"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("x", &["v"]);
        t.row(vec!["a,b".into()]);
        t.row(vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}

//! Machine-readable benchmark reports: the `BENCH_<tag>.json` artifact.
//!
//! `bench run` emits one [`BenchReport`] per invocation — dataset shape,
//! parameters, the verification-kernel microbenchmark, and one
//! [`MethodReport`] row per method (qps, latency percentiles, recall,
//! overall ratio, verification/I-O cost, index size). CI's `bench-smoke`
//! job re-reads the checked-in `results/bench_baseline.json` and fails
//! the build when quality regresses or throughput collapses
//! ([`check_regression`]).
//!
//! The workspace is offline (no serde), so this module carries its own
//! minimal JSON value type with a writer and a recursive-descent parser
//! — enough for the flat schema here, not a general-purpose library.

use std::fmt::Write as _;

/// Schema version stamped into every report; bump on breaking changes
/// so the gate can reject incomparable baselines.
pub const SCHEMA_VERSION: u64 = 1;

/// Recall may drop by at most this much against the baseline.
pub const RECALL_TOLERANCE: f64 = 0.02;
/// Overall ratio may rise by at most this much against the baseline.
pub const RATIO_TOLERANCE: f64 = 0.02;
/// Smoke qps must stay above this fraction of the baseline (the CI gate
/// is deliberately loose — runners vary — and catches collapses, not
/// jitter).
pub const QPS_FLOOR_FRACTION: f64 = 0.70;
/// The early-abandon kernel must beat the plain kernel by at least this
/// factor on the smoke dataset (the tentpole's acceptance bar).
pub const MIN_VERIFY_SPEEDUP: f64 = 1.3;
/// Enabling the observability layer (stage timing, histograms, sampled
/// span capture, slow-log consideration) may cost at most this percent
/// of query throughput against the same run with it disabled. The
/// layer's absolute per-query cost is small and flat, but the SIMD
/// kernels roughly halved query latency, which doubled that fixed cost
/// *as a fraction* (~6% measured); on shared single-vCPU runners the
/// paired A/B adds a ±3% noise floor (host steal-time drift) on top.
/// Like [`QPS_FLOOR_FRACTION`], the budget sits above measurement +
/// noise to catch real regressions (accidental per-candidate recording
/// blows through it instantly), not jitter.
pub const MAX_OBS_OVERHEAD_PCT: f64 = 10.0;
/// When a run carries the `kernels` section and the baseline predates
/// it (the SIMD transition), end-to-end C2LSH throughput must be at
/// least this multiple of the pre-SIMD baseline's — the batched-hashing
/// tentpole's acceptance bar. Once the baseline itself carries the
/// section, the ordinary [`QPS_FLOOR_FRACTION`] floor takes over.
pub const MIN_KERNEL_QPS_SPEEDUP: f64 = 2.0;
/// A method's mean page reads per query may grow by at most this factor
/// over the baseline (skipped when the baseline did no I/O — in-memory
/// methods report zero).
pub const MAX_IO_GROWTH: f64 = 1.5;
/// A method's index bytes may grow by at most this factor over the
/// baseline (skipped when the baseline recorded none).
pub const MAX_INDEX_GROWTH: f64 = 1.25;
/// The paged tier's compressed posting lists must shrink the on-disk
/// bucket layout by at least this factor vs the uncompressed page
/// layout (the tentpole's compression acceptance bar; current-run
/// gate, no baseline needed).
pub const MIN_COMPRESSION_RATIO: f64 = 2.0;

// ---------------------------------------------------------------------
// JSON value
// ---------------------------------------------------------------------

/// A JSON value. Objects keep insertion order so emitted files diff
/// cleanly.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`; integers survive to 2⁵³).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered field list.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects (`None` elsewhere / when absent).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Shorthand: `self.get(key)` then [`Json::as_f64`].
    pub fn num(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Json::as_f64)
    }

    /// Parse a JSON document (must consume the whole input).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    /// Serialize with 2-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_number(out, *v),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON has no Infinity/NaN; null keeps the document valid and
        // the gate treats it as "absent".
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 9.0e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Json::Num),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        // Surrogate pairs are not needed for this schema;
                        // map lone surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always well-formed).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or(format!("bad number at byte {start}"))
}

// ---------------------------------------------------------------------
// Report schema
// ---------------------------------------------------------------------

/// Shape of the dataset a report was measured on.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetInfo {
    /// Profile name (e.g. `custom-4000x128`).
    pub name: String,
    /// Base objects.
    pub n: usize,
    /// Dimensionality.
    pub d: usize,
    /// Held-out queries evaluated.
    pub queries: usize,
}

/// The verification-phase microbenchmark: the pre-optimization pipeline
/// (the seed's 4-lane kernel, a fresh candidate buffer per query, a full
/// sort at the end) vs the current one (8-lane early-abandon kernel
/// feeding a live top-k bound, reused scratch) over the same candidate
/// stream — the tentpole's headline number.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyKernelReport {
    /// Nanoseconds per candidate, old verification pipeline.
    pub old_ns_per_cand: f64,
    /// Nanoseconds per candidate, new early-abandon pipeline.
    pub new_ns_per_cand: f64,
    /// `old / new` — the verification-phase speedup.
    pub speedup: f64,
    /// Fraction of candidates the bounded kernel cut short.
    pub abandon_rate: f64,
}

/// One point of the batched-projection sweep: mean cost of one hash
/// (one `m`-row dot product + offset) when `batch` queries are hashed
/// through [`c2lsh::kernels::KernelDispatch::project_batch`] at once.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelBatchPoint {
    /// Queries per `project_batch` call.
    pub batch: usize,
    /// Nanoseconds per hash at this batch size (dispatched kernel).
    pub ns_per_hash: f64,
}

/// The SIMD-kernel microbenchmarks: the dispatched kernel vs the scalar
/// oracle on both hot loops (projection hashing and bounded distance),
/// plus the batched-projection sweep. Both kernels produce bit-identical
/// results by contract, so the deltas here are pure speed.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelsReport {
    /// Name of the dispatched kernel (`scalar`, `sse2`, `avx2`, `neon`).
    pub kernel: String,
    /// Nanoseconds per hash, scalar kernel, one query at a time.
    pub scalar_ns_per_hash: f64,
    /// Nanoseconds per hash, dispatched kernel, one query at a time.
    pub dispatched_ns_per_hash: f64,
    /// `scalar / dispatched` projection speedup (1.0 under
    /// `CC_FORCE_SCALAR=1`).
    pub hash_speedup: f64,
    /// Nanoseconds per full-dimension distance, scalar kernel.
    pub scalar_ns_per_cand: f64,
    /// Nanoseconds per full-dimension distance, dispatched kernel.
    pub dispatched_ns_per_cand: f64,
    /// `scalar / dispatched` distance speedup.
    pub cand_speedup: f64,
    /// Dispatched-kernel projection cost vs queries per batch.
    pub batch_sweep: Vec<KernelBatchPoint>,
}

/// A/B measurement of the observability layer's query-path cost: the
/// same engine and workload driven through the service's per-query
/// bookkeeping twice — once with a disabled registry (the plain
/// `serve` path) and once with histograms, sampled span capture and
/// the slow log live. The acceptance bar is
/// [`MAX_OBS_OVERHEAD_PCT`].
#[derive(Debug, Clone, PartialEq)]
pub struct ObsOverheadReport {
    /// Queries per second with observability disabled.
    pub base_qps: f64,
    /// Queries per second with observability enabled.
    pub obs_qps: f64,
    /// `(base - obs) / base × 100` — may be slightly negative under
    /// timing noise.
    pub overhead_pct: f64,
}

/// A/B measurement of filtered search against its only drop-in
/// alternative: run a selective predicate *inside* the collision loop
/// (rejections happen before any distance computation) vs the naive
/// plan — query unfiltered with `k` inflated until the post-filtered
/// answer reaches at least the filtered arm's recall on the matching
/// subset, then keep only matching points. Equal-or-better recall with
/// strictly fewer verified candidates is the filtered path's acceptance
/// bar, gated by [`check_regression`] (current-run only, like the
/// observability A/B).
#[derive(Debug, Clone, PartialEq)]
pub struct FilteredSearchReport {
    /// Fraction of base points matching the predicate.
    pub selectivity: f64,
    /// `k` the post-filter arm had to request to match the filtered
    /// arm's recall.
    pub postfilter_k: usize,
    /// Filtered arm: recall against exact k-NN over the matching
    /// subset.
    pub filtered_recall: f64,
    /// Post-filter arm: recall of the kept top-`k` on the same ground
    /// truth (≥ `filtered_recall` by construction unless it hit `n`).
    pub postfilter_recall: f64,
    /// Mean candidates verified per query, filtered arm.
    pub filtered_verified_per_query: f64,
    /// Mean candidates verified per query, post-filter arm.
    pub postfilter_verified_per_query: f64,
    /// Mean candidates the predicate rejected per query before
    /// verification (filtered arm).
    pub rejected_per_query: f64,
}

/// The paged disk tier's large-profile measurements: streaming ingest
/// into the page file, out-of-core queries through the pinned buffer
/// pool, and a small equal-parameter parity sub-run against the
/// in-memory backend (the recall-drift acceptance bar). Present only on
/// `--profile large` runs; absent (and parsed leniently) everywhere
/// else.
#[derive(Debug, Clone, PartialEq)]
pub struct PagedTierReport {
    /// Points ingested into the page file.
    pub points: usize,
    /// Wall-clock seconds for the streaming build (generate + hash +
    /// spill + merge + write).
    pub ingest_seconds: f64,
    /// Mean *physical* page reads (buffer-pool misses) per query.
    pub io_per_query: f64,
    /// Compressed posting bytes on disk (the index-size metric; the
    /// shared vector segment is excluded, as for every other method).
    pub index_bytes: f64,
    /// Total page-file bytes (vectors + postings + header).
    pub file_bytes: f64,
    /// Buffer-pool capacity, in pages, the query phase ran with.
    pub bufpool_pages: usize,
    /// Buffer-pool hit rate over the query phase, `[0, 1]`.
    pub bufpool_hit_rate: f64,
    /// `uncompressed posting layout bytes / compressed posting bytes`.
    pub compression_ratio: f64,
    /// Peak resident set (VmHWM) after the query phase, bytes.
    pub peak_rss_bytes: f64,
    /// Points in the equal-parameter parity sub-run (0 = skipped).
    pub parity_points: usize,
    /// Paged-backend recall on the parity sub-run.
    pub paged_parity_recall: f64,
    /// In-memory-backend recall on the parity sub-run, same parameters.
    pub mem_parity_recall: f64,
}

/// One method's row of the report.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodReport {
    /// Method display name ([`crate::methods::AnnIndex::name`]).
    pub name: String,
    /// Sequential queries per second (wall clock).
    pub qps: f64,
    /// Median query latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile query latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile query latency, milliseconds.
    pub p99_ms: f64,
    /// Mean recall against exact ground truth.
    pub recall: f64,
    /// Mean overall ratio (≥ 1; 1 = exact).
    pub ratio: f64,
    /// Mean candidates verified per query.
    pub verified_per_query: f64,
    /// Mean candidates early-abandoned per query (subset of verified).
    pub abandoned_per_query: f64,
    /// Mean modeled page reads per query.
    pub io_per_query: f64,
    /// Index size in bytes.
    pub index_bytes: f64,
}

/// A full `BENCH_<tag>.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Report tag (`smoke`, a dataset name, …) — names the output file.
    pub tag: String,
    /// Dataset shape.
    pub dataset: DatasetInfo,
    /// Neighbors requested per query.
    pub k: usize,
    /// RNG seed every method was built with.
    pub seed: u64,
    /// Kernel microbenchmark (present when the run included it).
    pub verify: Option<VerifyKernelReport>,
    /// SIMD-kernel microbenchmarks (present when the run included
    /// them; absent in baselines written before the kernels existed).
    pub kernels: Option<KernelsReport>,
    /// Observability-layer overhead A/B (present when the run included
    /// it; absent in baselines written before the field existed).
    pub obs_overhead: Option<ObsOverheadReport>,
    /// Filtered-search A/B (present when the run included it; absent
    /// in baselines written before the field existed).
    pub filtered_search: Option<FilteredSearchReport>,
    /// Paged-tier large-profile section (present on `--profile large`
    /// runs; absent in baselines written before the disk tier existed).
    pub paged: Option<PagedTierReport>,
    /// Per-method measurements.
    pub methods: Vec<MethodReport>,
}

impl BenchReport {
    /// Serialize to the canonical pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        let dataset = Json::Obj(vec![
            ("name".into(), Json::Str(self.dataset.name.clone())),
            ("n".into(), Json::Num(self.dataset.n as f64)),
            ("d".into(), Json::Num(self.dataset.d as f64)),
            ("queries".into(), Json::Num(self.dataset.queries as f64)),
        ]);
        let params = Json::Obj(vec![
            ("k".into(), Json::Num(self.k as f64)),
            ("seed".into(), Json::Num(self.seed as f64)),
        ]);
        let verify = match &self.verify {
            None => Json::Null,
            Some(v) => Json::Obj(vec![
                ("old_ns_per_cand".into(), Json::Num(v.old_ns_per_cand)),
                ("new_ns_per_cand".into(), Json::Num(v.new_ns_per_cand)),
                ("speedup".into(), Json::Num(v.speedup)),
                ("abandon_rate".into(), Json::Num(v.abandon_rate)),
            ]),
        };
        let kernels = match &self.kernels {
            None => Json::Null,
            Some(kr) => Json::Obj(vec![
                ("kernel".into(), Json::Str(kr.kernel.clone())),
                ("scalar_ns_per_hash".into(), Json::Num(kr.scalar_ns_per_hash)),
                ("dispatched_ns_per_hash".into(), Json::Num(kr.dispatched_ns_per_hash)),
                ("hash_speedup".into(), Json::Num(kr.hash_speedup)),
                ("scalar_ns_per_cand".into(), Json::Num(kr.scalar_ns_per_cand)),
                ("dispatched_ns_per_cand".into(), Json::Num(kr.dispatched_ns_per_cand)),
                ("cand_speedup".into(), Json::Num(kr.cand_speedup)),
                (
                    "batch_sweep".into(),
                    Json::Arr(
                        kr.batch_sweep
                            .iter()
                            .map(|p| {
                                Json::Obj(vec![
                                    ("batch".into(), Json::Num(p.batch as f64)),
                                    ("ns_per_hash".into(), Json::Num(p.ns_per_hash)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        };
        let obs_overhead = match &self.obs_overhead {
            None => Json::Null,
            Some(o) => Json::Obj(vec![
                ("base_qps".into(), Json::Num(o.base_qps)),
                ("obs_qps".into(), Json::Num(o.obs_qps)),
                ("overhead_pct".into(), Json::Num(o.overhead_pct)),
            ]),
        };
        let filtered_search = match &self.filtered_search {
            None => Json::Null,
            Some(f) => Json::Obj(vec![
                ("selectivity".into(), Json::Num(f.selectivity)),
                ("postfilter_k".into(), Json::Num(f.postfilter_k as f64)),
                ("filtered_recall".into(), Json::Num(f.filtered_recall)),
                ("postfilter_recall".into(), Json::Num(f.postfilter_recall)),
                ("filtered_verified_per_query".into(), Json::Num(f.filtered_verified_per_query)),
                (
                    "postfilter_verified_per_query".into(),
                    Json::Num(f.postfilter_verified_per_query),
                ),
                ("rejected_per_query".into(), Json::Num(f.rejected_per_query)),
            ]),
        };
        let paged = match &self.paged {
            None => Json::Null,
            Some(p) => Json::Obj(vec![
                ("points".into(), Json::Num(p.points as f64)),
                ("ingest_seconds".into(), Json::Num(p.ingest_seconds)),
                ("io_per_query".into(), Json::Num(p.io_per_query)),
                ("index_bytes".into(), Json::Num(p.index_bytes)),
                ("file_bytes".into(), Json::Num(p.file_bytes)),
                ("bufpool_pages".into(), Json::Num(p.bufpool_pages as f64)),
                ("bufpool_hit_rate".into(), Json::Num(p.bufpool_hit_rate)),
                ("compression_ratio".into(), Json::Num(p.compression_ratio)),
                ("peak_rss_bytes".into(), Json::Num(p.peak_rss_bytes)),
                ("parity_points".into(), Json::Num(p.parity_points as f64)),
                ("paged_parity_recall".into(), Json::Num(p.paged_parity_recall)),
                ("mem_parity_recall".into(), Json::Num(p.mem_parity_recall)),
            ]),
        };
        let methods = Json::Arr(
            self.methods
                .iter()
                .map(|m| {
                    Json::Obj(vec![
                        ("name".into(), Json::Str(m.name.clone())),
                        ("qps".into(), Json::Num(m.qps)),
                        ("p50_ms".into(), Json::Num(m.p50_ms)),
                        ("p95_ms".into(), Json::Num(m.p95_ms)),
                        ("p99_ms".into(), Json::Num(m.p99_ms)),
                        ("recall".into(), Json::Num(m.recall)),
                        ("ratio".into(), Json::Num(m.ratio)),
                        ("verified_per_query".into(), Json::Num(m.verified_per_query)),
                        ("abandoned_per_query".into(), Json::Num(m.abandoned_per_query)),
                        ("io_per_query".into(), Json::Num(m.io_per_query)),
                        ("index_bytes".into(), Json::Num(m.index_bytes)),
                    ])
                })
                .collect(),
        );
        Json::Obj(vec![
            ("schema_version".into(), Json::Num(self.schema_version as f64)),
            ("tag".into(), Json::Str(self.tag.clone())),
            ("dataset".into(), dataset),
            ("params".into(), params),
            ("verify_kernel".into(), verify),
            ("kernels".into(), kernels),
            ("obs_overhead".into(), obs_overhead),
            ("filtered_search".into(), filtered_search),
            ("paged".into(), paged),
            ("methods".into(), methods),
        ])
        .to_pretty()
    }

    /// Parse a report back from JSON (the inverse of
    /// [`BenchReport::to_json`]; also accepts hand-edited baselines as
    /// long as the required fields are present).
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let root = Json::parse(text)?;
        let schema_version = root.num("schema_version").ok_or("missing schema_version")? as u64;
        if schema_version != SCHEMA_VERSION {
            return Err(format!("schema_version {schema_version} != supported {SCHEMA_VERSION}"));
        }
        let tag = root.get("tag").and_then(Json::as_str).ok_or("missing tag")?.to_string();
        let ds = root.get("dataset").ok_or("missing dataset")?;
        let dataset = DatasetInfo {
            name: ds.get("name").and_then(Json::as_str).ok_or("missing dataset.name")?.into(),
            n: ds.num("n").ok_or("missing dataset.n")? as usize,
            d: ds.num("d").ok_or("missing dataset.d")? as usize,
            queries: ds.num("queries").ok_or("missing dataset.queries")? as usize,
        };
        let params = root.get("params").ok_or("missing params")?;
        let k = params.num("k").ok_or("missing params.k")? as usize;
        let seed = params.num("seed").ok_or("missing params.seed")? as u64;
        let verify = match root.get("verify_kernel") {
            None | Some(Json::Null) => None,
            Some(v) => Some(VerifyKernelReport {
                old_ns_per_cand: v.num("old_ns_per_cand").unwrap_or(0.0),
                new_ns_per_cand: v.num("new_ns_per_cand").unwrap_or(0.0),
                speedup: v.num("speedup").unwrap_or(0.0),
                abandon_rate: v.num("abandon_rate").unwrap_or(0.0),
            }),
        };
        // Absent in pre-SIMD baselines; parse leniently.
        let kernels = match root.get("kernels") {
            None | Some(Json::Null) => None,
            Some(kr) => Some(KernelsReport {
                kernel: kr.get("kernel").and_then(Json::as_str).unwrap_or("scalar").into(),
                scalar_ns_per_hash: kr.num("scalar_ns_per_hash").unwrap_or(0.0),
                dispatched_ns_per_hash: kr.num("dispatched_ns_per_hash").unwrap_or(0.0),
                hash_speedup: kr.num("hash_speedup").unwrap_or(0.0),
                scalar_ns_per_cand: kr.num("scalar_ns_per_cand").unwrap_or(0.0),
                dispatched_ns_per_cand: kr.num("dispatched_ns_per_cand").unwrap_or(0.0),
                cand_speedup: kr.num("cand_speedup").unwrap_or(0.0),
                batch_sweep: kr
                    .get("batch_sweep")
                    .and_then(Json::as_arr)
                    .unwrap_or(&[])
                    .iter()
                    .map(|p| KernelBatchPoint {
                        batch: p.num("batch").unwrap_or(0.0) as usize,
                        ns_per_hash: p.num("ns_per_hash").unwrap_or(0.0),
                    })
                    .collect(),
            }),
        };
        // Absent in pre-observability baselines; parse leniently.
        let obs_overhead = match root.get("obs_overhead") {
            None | Some(Json::Null) => None,
            Some(o) => Some(ObsOverheadReport {
                base_qps: o.num("base_qps").unwrap_or(0.0),
                obs_qps: o.num("obs_qps").unwrap_or(0.0),
                overhead_pct: o.num("overhead_pct").unwrap_or(0.0),
            }),
        };
        // Absent in pre-filtered-search baselines; parse leniently.
        let filtered_search = match root.get("filtered_search") {
            None | Some(Json::Null) => None,
            Some(f) => Some(FilteredSearchReport {
                selectivity: f.num("selectivity").unwrap_or(0.0),
                postfilter_k: f.num("postfilter_k").unwrap_or(0.0) as usize,
                filtered_recall: f.num("filtered_recall").unwrap_or(0.0),
                postfilter_recall: f.num("postfilter_recall").unwrap_or(0.0),
                filtered_verified_per_query: f.num("filtered_verified_per_query").unwrap_or(0.0),
                postfilter_verified_per_query: f
                    .num("postfilter_verified_per_query")
                    .unwrap_or(0.0),
                rejected_per_query: f.num("rejected_per_query").unwrap_or(0.0),
            }),
        };
        // Absent in pre-disk-tier baselines; parse leniently.
        let paged = match root.get("paged") {
            None | Some(Json::Null) => None,
            Some(p) => Some(PagedTierReport {
                points: p.num("points").unwrap_or(0.0) as usize,
                ingest_seconds: p.num("ingest_seconds").unwrap_or(0.0),
                io_per_query: p.num("io_per_query").unwrap_or(0.0),
                index_bytes: p.num("index_bytes").unwrap_or(0.0),
                file_bytes: p.num("file_bytes").unwrap_or(0.0),
                bufpool_pages: p.num("bufpool_pages").unwrap_or(0.0) as usize,
                bufpool_hit_rate: p.num("bufpool_hit_rate").unwrap_or(0.0),
                compression_ratio: p.num("compression_ratio").unwrap_or(0.0),
                peak_rss_bytes: p.num("peak_rss_bytes").unwrap_or(0.0),
                parity_points: p.num("parity_points").unwrap_or(0.0) as usize,
                paged_parity_recall: p.num("paged_parity_recall").unwrap_or(0.0),
                mem_parity_recall: p.num("mem_parity_recall").unwrap_or(0.0),
            }),
        };
        let methods = root
            .get("methods")
            .and_then(Json::as_arr)
            .ok_or("missing methods")?
            .iter()
            .map(|m| -> Result<MethodReport, String> {
                Ok(MethodReport {
                    name: m.get("name").and_then(Json::as_str).ok_or("method missing name")?.into(),
                    qps: m.num("qps").ok_or("method missing qps")?,
                    p50_ms: m.num("p50_ms").unwrap_or(0.0),
                    p95_ms: m.num("p95_ms").unwrap_or(0.0),
                    p99_ms: m.num("p99_ms").unwrap_or(0.0),
                    recall: m.num("recall").ok_or("method missing recall")?,
                    ratio: m.num("ratio").ok_or("method missing ratio")?,
                    verified_per_query: m.num("verified_per_query").unwrap_or(0.0),
                    abandoned_per_query: m.num("abandoned_per_query").unwrap_or(0.0),
                    io_per_query: m.num("io_per_query").unwrap_or(0.0),
                    index_bytes: m.num("index_bytes").unwrap_or(0.0),
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BenchReport {
            schema_version,
            tag,
            dataset,
            k,
            seed,
            verify,
            kernels,
            obs_overhead,
            filtered_search,
            paged,
            methods,
        })
    }

    /// Look up a method row by name.
    pub fn method(&self, name: &str) -> Option<&MethodReport> {
        self.methods.iter().find(|m| m.name == name)
    }
}

/// The CI gate: compare `current` against the checked-in `baseline` and
/// return one human-readable line per violation (empty = pass).
///
/// Checked, per baseline method:
/// * the method still exists in `current`,
/// * recall has not dropped by more than [`RECALL_TOLERANCE`],
/// * overall ratio has not risen by more than [`RATIO_TOLERANCE`],
/// * qps has not fallen below [`QPS_FLOOR_FRACTION`] × baseline
///   (loose on purpose: CI runners differ from the machine that wrote
///   the baseline, so only collapses — not jitter — should fail).
///
/// Plus, when both reports carry the kernel microbenchmark: the current
/// early-abandon speedup is at least [`MIN_VERIFY_SPEEDUP`].
///
/// Plus, when the current run carries the SIMD `kernels` section and
/// the baseline predates it: current C2LSH throughput must be at least
/// [`MIN_KERNEL_QPS_SPEEDUP`] × the baseline's (the transition gate).
///
/// Plus, when the current run carries the observability A/B: enabling
/// the observability layer costs at most [`MAX_OBS_OVERHEAD_PCT`]
/// percent of query throughput. (Current-run only — the measure is
/// relative within one run, so no baseline is needed.)
///
/// Plus, when the current run carries the filtered-search A/B
/// (current-run only, same reasoning): the filtered arm must verify
/// strictly fewer candidates than unfiltered + post-filter while the
/// post-filter arm holds equal-or-better recall on the matching
/// subset — otherwise the in-loop predicate would be pointless.
pub fn check_regression(baseline: &BenchReport, current: &BenchReport) -> Vec<String> {
    let mut violations = Vec::new();
    if baseline.dataset != current.dataset || baseline.k != current.k {
        violations.push(format!(
            "incomparable runs: baseline {}/n={}/k={} vs current {}/n={}/k={} \
             (refresh the baseline with --write-baseline)",
            baseline.dataset.name,
            baseline.dataset.n,
            baseline.k,
            current.dataset.name,
            current.dataset.n,
            current.k,
        ));
        return violations;
    }
    for base in &baseline.methods {
        let Some(cur) = current.method(&base.name) else {
            violations.push(format!("method {} disappeared from the run", base.name));
            continue;
        };
        if cur.recall < base.recall - RECALL_TOLERANCE {
            violations.push(format!(
                "{}: recall {:.4} fell below baseline {:.4} - {RECALL_TOLERANCE}",
                base.name, cur.recall, base.recall
            ));
        }
        if cur.ratio > base.ratio + RATIO_TOLERANCE {
            violations.push(format!(
                "{}: ratio {:.4} rose above baseline {:.4} + {RATIO_TOLERANCE}",
                base.name, cur.ratio, base.ratio
            ));
        }
        if cur.qps < base.qps * QPS_FLOOR_FRACTION {
            violations.push(format!(
                "{}: qps {:.1} fell below {:.0}% of baseline {:.1}",
                base.name,
                cur.qps,
                QPS_FLOOR_FRACTION * 100.0,
                base.qps
            ));
        }
        // I/O and index-size gates are skipped for baselines that
        // recorded none (in-memory methods, pre-disk-tier baselines).
        if base.io_per_query > 0.0 && cur.io_per_query > base.io_per_query * MAX_IO_GROWTH {
            violations.push(format!(
                "{}: io/query {:.1} grew past {MAX_IO_GROWTH}x baseline {:.1}",
                base.name, cur.io_per_query, base.io_per_query
            ));
        }
        if base.index_bytes > 0.0 && cur.index_bytes > base.index_bytes * MAX_INDEX_GROWTH {
            violations.push(format!(
                "{}: index bytes {:.0} grew past {MAX_INDEX_GROWTH}x baseline {:.0}",
                base.name, cur.index_bytes, base.index_bytes
            ));
        }
    }
    if let (Some(_), Some(cur)) = (&baseline.verify, &current.verify) {
        if cur.speedup < MIN_VERIFY_SPEEDUP {
            violations.push(format!(
                "verify kernel speedup {:.2}x fell below the {MIN_VERIFY_SPEEDUP}x floor",
                cur.speedup
            ));
        }
    }
    // The SIMD transition gate: a run that measured the kernels section
    // against a baseline that predates it must show the end-to-end win
    // the batched-hashing work promised. Once the baseline carries the
    // section too, the ordinary qps floor above takes over (a 2x bar
    // against an already-2x baseline would demand 4x).
    if current.kernels.is_some() && baseline.kernels.is_none() {
        if let (Some(base), Some(cur)) = (baseline.method("C2LSH"), current.method("C2LSH")) {
            if cur.qps < base.qps * MIN_KERNEL_QPS_SPEEDUP {
                violations.push(format!(
                    "C2LSH qps {:.1} did not reach {MIN_KERNEL_QPS_SPEEDUP}x the pre-SIMD \
                     baseline's {:.1}",
                    cur.qps, base.qps
                ));
            }
        }
    }
    if let Some(obs) = &current.obs_overhead {
        if obs.overhead_pct > MAX_OBS_OVERHEAD_PCT {
            violations.push(format!(
                "observability overhead {:.2}% exceeds the {MAX_OBS_OVERHEAD_PCT}% budget \
                 ({:.1} qps off vs {:.1} qps on)",
                obs.overhead_pct, obs.base_qps, obs.obs_qps
            ));
        }
    }
    if let Some(fs) = &current.filtered_search {
        if fs.filtered_verified_per_query >= fs.postfilter_verified_per_query {
            violations.push(format!(
                "filtered search verified {:.1} candidates/query, not strictly fewer than \
                 unfiltered + post-filter at k={} ({:.1})",
                fs.filtered_verified_per_query, fs.postfilter_k, fs.postfilter_verified_per_query
            ));
        }
        if fs.postfilter_recall < fs.filtered_recall - RECALL_TOLERANCE {
            violations.push(format!(
                "post-filter arm recall {:.4} never reached the filtered arm's {:.4} - \
                 {RECALL_TOLERANCE} — the verified-candidate comparison is not at equal recall",
                fs.postfilter_recall, fs.filtered_recall
            ));
        }
    }
    // Paged-tier gates are current-run only (the compression ratio and
    // the parity drift are relative measures within one run).
    if let Some(p) = &current.paged {
        if p.compression_ratio < MIN_COMPRESSION_RATIO {
            violations.push(format!(
                "paged tier compression {:.2}x fell below the {MIN_COMPRESSION_RATIO}x floor",
                p.compression_ratio
            ));
        }
        if p.parity_points > 0 && p.paged_parity_recall < p.mem_parity_recall - RECALL_TOLERANCE {
            violations.push(format!(
                "paged backend parity recall {:.4} drifted below the in-memory backend's \
                 {:.4} - {RECALL_TOLERANCE} at equal parameters",
                p.paged_parity_recall, p.mem_parity_recall
            ));
        }
    }
    // When one run measured both disk layouts, the compressed paged
    // index must be at least MIN_COMPRESSION_RATIO smaller than the
    // uncompressed per-entry disk layout.
    if let (Some(paged), Some(disk)) =
        (current.method("C2LSH(paged)"), current.method("C2LSH(disk)"))
    {
        if paged.index_bytes > 0.0
            && disk.index_bytes > 0.0
            && paged.index_bytes * MIN_COMPRESSION_RATIO > disk.index_bytes
        {
            violations.push(format!(
                "paged index {:.0} bytes is not {MIN_COMPRESSION_RATIO}x smaller than the \
                 uncompressed disk layout's {:.0}",
                paged.index_bytes, disk.index_bytes
            ));
        }
    }
    violations
}

/// Latency percentile over raw per-query nanosecond samples
/// (nearest-rank definition; `p` in `[0, 100]`).
pub fn percentile_ms(samples_ns: &[u64], p: f64) -> f64 {
    if samples_ns.is_empty() {
        return 0.0;
    }
    let mut sorted = samples_ns.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1] as f64 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            tag: "smoke".into(),
            dataset: DatasetInfo { name: "custom-4000x128".into(), n: 4000, d: 128, queries: 40 },
            k: 10,
            seed: 42,
            verify: Some(VerifyKernelReport {
                old_ns_per_cand: 100.0,
                new_ns_per_cand: 40.0,
                speedup: 2.5,
                abandon_rate: 0.8,
            }),
            kernels: Some(KernelsReport {
                kernel: "avx2".into(),
                scalar_ns_per_hash: 120.0,
                dispatched_ns_per_hash: 30.0,
                hash_speedup: 4.0,
                scalar_ns_per_cand: 80.0,
                dispatched_ns_per_cand: 25.0,
                cand_speedup: 3.2,
                batch_sweep: vec![
                    KernelBatchPoint { batch: 1, ns_per_hash: 32.0 },
                    KernelBatchPoint { batch: 8, ns_per_hash: 28.0 },
                ],
            }),
            obs_overhead: Some(ObsOverheadReport {
                base_qps: 1010.0,
                obs_qps: 1000.0,
                overhead_pct: 0.99,
            }),
            filtered_search: Some(FilteredSearchReport {
                selectivity: 0.33,
                postfilter_k: 30,
                filtered_recall: 0.95,
                postfilter_recall: 0.96,
                filtered_verified_per_query: 60.0,
                postfilter_verified_per_query: 140.0,
                rejected_per_query: 110.0,
            }),
            paged: Some(PagedTierReport {
                points: 1_000_000,
                ingest_seconds: 120.0,
                io_per_query: 85.0,
                index_bytes: 9.0e7,
                file_bytes: 6.0e8,
                bufpool_pages: 4096,
                bufpool_hit_rate: 0.92,
                compression_ratio: 2.6,
                peak_rss_bytes: 3.0e8,
                parity_points: 120_000,
                paged_parity_recall: 0.94,
                mem_parity_recall: 0.95,
            }),
            methods: vec![
                MethodReport {
                    name: "C2LSH".into(),
                    qps: 1000.0,
                    p50_ms: 0.9,
                    p95_ms: 1.5,
                    p99_ms: 2.0,
                    recall: 0.95,
                    ratio: 1.01,
                    verified_per_query: 150.0,
                    abandoned_per_query: 90.0,
                    io_per_query: 30.0,
                    index_bytes: 1.5e6,
                },
                MethodReport {
                    name: "LinearScan".into(),
                    qps: 200.0,
                    p50_ms: 5.0,
                    p95_ms: 5.5,
                    p99_ms: 6.0,
                    recall: 1.0,
                    ratio: 1.0,
                    verified_per_query: 4000.0,
                    abandoned_per_query: 0.0,
                    io_per_query: 500.0,
                    index_bytes: 0.0,
                },
            ],
        }
    }

    #[test]
    fn report_roundtrips_through_json() {
        let r = sample_report();
        let text = r.to_json();
        let back = BenchReport::from_json(&text).expect("parse back");
        assert_eq!(back, r);
    }

    #[test]
    fn parser_handles_whitespace_escapes_and_nesting() {
        let v =
            Json::parse(r#" { "a\n\"x\"" : [ 1, -2.5e3, true, null, {"inner": "A"} ] } "#).unwrap();
        let arr = v.get("a\n\"x\"").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0], Json::Num(1.0));
        assert_eq!(arr[1], Json::Num(-2500.0));
        assert_eq!(arr[2], Json::Bool(true));
        assert_eq!(arr[3], Json::Null);
        assert_eq!(arr[4].get("inner"), Some(&Json::Str("A".into())));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn gate_passes_on_identical_runs() {
        let r = sample_report();
        assert!(check_regression(&r, &r).is_empty());
    }

    #[test]
    fn gate_catches_recall_ratio_qps_and_missing_method() {
        let base = sample_report();
        let mut cur = sample_report();
        cur.methods[0].recall = base.methods[0].recall - RECALL_TOLERANCE - 0.01;
        cur.methods[0].ratio = base.methods[0].ratio + RATIO_TOLERANCE + 0.01;
        cur.methods[0].qps = base.methods[0].qps * (QPS_FLOOR_FRACTION - 0.05);
        cur.methods.pop(); // LinearScan disappears
        let v = check_regression(&base, &cur);
        assert_eq!(v.len(), 4, "violations: {v:?}");
        assert!(v.iter().any(|m| m.contains("recall")));
        assert!(v.iter().any(|m| m.contains("ratio")));
        assert!(v.iter().any(|m| m.contains("qps")));
        assert!(v.iter().any(|m| m.contains("disappeared")));
    }

    #[test]
    fn gate_tolerates_jitter() {
        let base = sample_report();
        let mut cur = sample_report();
        cur.methods[0].recall -= RECALL_TOLERANCE / 2.0;
        cur.methods[0].ratio += RATIO_TOLERANCE / 2.0;
        cur.methods[0].qps *= 0.8; // above the 0.7 floor
        assert!(check_regression(&base, &cur).is_empty());
    }

    #[test]
    fn gate_catches_kernel_speedup_collapse() {
        let base = sample_report();
        let mut cur = sample_report();
        cur.verify.as_mut().unwrap().speedup = 1.0;
        let v = check_regression(&base, &cur);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("speedup"));
    }

    #[test]
    fn simd_transition_gate_demands_2x_over_presimd_baseline() {
        // Baseline without the kernels section = pre-SIMD: the current
        // run must double C2LSH qps.
        let mut base = sample_report();
        base.kernels = None;
        let mut cur = sample_report();
        cur.methods[0].qps = base.methods[0].qps * (MIN_KERNEL_QPS_SPEEDUP - 0.1);
        let v = check_regression(&base, &cur);
        assert_eq!(v.len(), 1, "violations: {v:?}");
        assert!(v[0].contains("pre-SIMD"));
        cur.methods[0].qps = base.methods[0].qps * (MIN_KERNEL_QPS_SPEEDUP + 0.1);
        assert!(check_regression(&base, &cur).is_empty());
        // Once the baseline carries the section, only the ordinary qps
        // floor applies — same-speed runs pass.
        assert!(check_regression(&sample_report(), &sample_report()).is_empty());
    }

    #[test]
    fn kernels_field_is_optional() {
        // A baseline written before the SIMD kernels still parses
        // (kernels -> None).
        let mut base_text = sample_report().to_json();
        let start = base_text.find("\"kernels\"").unwrap();
        let end = base_text[start..].find("]\n  },").unwrap() + start + 6;
        base_text.replace_range(start..end, "\"kernels\": null,");
        let base = BenchReport::from_json(&base_text).expect("legacy baseline parses");
        assert_eq!(base.kernels, None);
        // And a current run without the section is never gated on it.
        let mut cur = sample_report();
        cur.kernels = None;
        assert!(check_regression(&base, &cur).is_empty());
    }

    #[test]
    fn gate_catches_obs_overhead_over_budget() {
        let base = sample_report();
        let mut cur = sample_report();
        cur.obs_overhead = Some(ObsOverheadReport {
            base_qps: 1000.0,
            obs_qps: 875.0,
            overhead_pct: MAX_OBS_OVERHEAD_PCT + 2.5,
        });
        let v = check_regression(&base, &cur);
        assert_eq!(v.len(), 1, "violations: {v:?}");
        assert!(v[0].contains("observability overhead"));
    }

    #[test]
    fn obs_overhead_gate_is_current_run_only_and_field_is_optional() {
        // A baseline written before the field existed still parses
        // (obs_overhead -> None) and still gates the current run.
        let mut base_text = sample_report().to_json();
        let start = base_text.find("\"obs_overhead\"").unwrap();
        let end = base_text[start..].find("},").unwrap() + start + 2;
        base_text.replace_range(start..end, "\"obs_overhead\": null,");
        let base = BenchReport::from_json(&base_text).expect("legacy baseline parses");
        assert_eq!(base.obs_overhead, None);

        let mut cur = sample_report();
        assert!(check_regression(&base, &cur).is_empty());
        cur.obs_overhead.as_mut().unwrap().overhead_pct = MAX_OBS_OVERHEAD_PCT + 1.0;
        assert_eq!(check_regression(&base, &cur).len(), 1);
        // And a current run without the A/B is not penalized.
        cur.obs_overhead = None;
        assert!(check_regression(&base, &cur).is_empty());
    }

    #[test]
    fn gate_catches_filtered_search_not_cheaper() {
        let base = sample_report();
        let mut cur = sample_report();
        // Filtered arm verifying as much as the post-filter arm defeats
        // the in-loop predicate.
        cur.filtered_search.as_mut().unwrap().filtered_verified_per_query = 140.0;
        let v = check_regression(&base, &cur);
        assert_eq!(v.len(), 1, "violations: {v:?}");
        assert!(v[0].contains("not strictly fewer"));
    }

    #[test]
    fn gate_catches_filtered_search_recall_mismatch() {
        let base = sample_report();
        let mut cur = sample_report();
        cur.filtered_search.as_mut().unwrap().postfilter_recall = 0.95 - RECALL_TOLERANCE - 0.01;
        let v = check_regression(&base, &cur);
        assert_eq!(v.len(), 1, "violations: {v:?}");
        assert!(v[0].contains("equal recall"));
    }

    #[test]
    fn filtered_search_field_is_optional() {
        // A baseline written before the field existed still parses
        // (filtered_search -> None) and does not gate anything.
        let mut base_text = sample_report().to_json();
        let start = base_text.find("\"filtered_search\"").unwrap();
        let end = base_text[start..].find("},").unwrap() + start + 2;
        base_text.replace_range(start..end, "\"filtered_search\": null,");
        let base = BenchReport::from_json(&base_text).expect("legacy baseline parses");
        assert_eq!(base.filtered_search, None);
        assert!(check_regression(&base, &sample_report()).is_empty());

        // A current run without the A/B is not penalized either.
        let mut cur = sample_report();
        cur.filtered_search = None;
        assert!(check_regression(&base, &cur).is_empty());
    }

    #[test]
    fn gate_catches_io_and_index_growth() {
        let base = sample_report();
        let mut cur = sample_report();
        cur.methods[0].io_per_query = base.methods[0].io_per_query * MAX_IO_GROWTH * 1.1;
        cur.methods[0].index_bytes = base.methods[0].index_bytes * MAX_INDEX_GROWTH * 1.1;
        let v = check_regression(&base, &cur);
        assert_eq!(v.len(), 2, "violations: {v:?}");
        assert!(v.iter().any(|m| m.contains("io/query")));
        assert!(v.iter().any(|m| m.contains("index bytes")));
        // Zero-valued baseline fields (in-memory methods, legacy
        // baselines) never gate.
        let mut cur = sample_report();
        cur.methods[1].io_per_query = 1.0e9;
        cur.methods[1].index_bytes = 1.0e9;
        let mut base = sample_report();
        base.methods[1].io_per_query = 0.0;
        assert!(check_regression(&base, &cur).is_empty());
    }

    #[test]
    fn gate_catches_paged_compression_and_parity_drift() {
        let base = sample_report();
        let mut cur = sample_report();
        cur.paged.as_mut().unwrap().compression_ratio = MIN_COMPRESSION_RATIO - 0.3;
        cur.paged.as_mut().unwrap().paged_parity_recall =
            cur.paged.as_ref().unwrap().mem_parity_recall - RECALL_TOLERANCE - 0.01;
        let v = check_regression(&base, &cur);
        assert_eq!(v.len(), 2, "violations: {v:?}");
        assert!(v.iter().any(|m| m.contains("compression")));
        assert!(v.iter().any(|m| m.contains("parity recall")));
        // A skipped parity sub-run (parity_points = 0) does not gate.
        let mut cur = sample_report();
        cur.paged.as_mut().unwrap().parity_points = 0;
        cur.paged.as_mut().unwrap().paged_parity_recall = 0.0;
        assert!(check_regression(&base, &cur).is_empty());
    }

    #[test]
    fn gate_compares_paged_vs_disk_index_bytes_when_both_present() {
        let base = sample_report();
        let mut cur = sample_report();
        let mut paged_row = cur.methods[0].clone();
        paged_row.name = "C2LSH(paged)".into();
        paged_row.index_bytes = 1.0e6;
        let mut disk_row = cur.methods[0].clone();
        disk_row.name = "C2LSH(disk)".into();
        disk_row.index_bytes = 3.0e6; // 3x larger: passes the 2x bar
        cur.methods.push(paged_row);
        cur.methods.push(disk_row);
        assert!(check_regression(&base, &cur).is_empty());
        cur.methods.last_mut().unwrap().index_bytes = 1.5e6; // only 1.5x
        let v = check_regression(&base, &cur);
        assert_eq!(v.len(), 1, "violations: {v:?}");
        assert!(v[0].contains("not 2x smaller"));
    }

    #[test]
    fn paged_field_is_optional() {
        // A baseline written before the disk tier still parses
        // (paged -> None) and does not gate anything.
        let mut base_text = sample_report().to_json();
        let start = base_text.find("\"paged\"").unwrap();
        let end = base_text[start..].find("},").unwrap() + start + 2;
        base_text.replace_range(start..end, "\"paged\": null,");
        let base = BenchReport::from_json(&base_text).expect("legacy baseline parses");
        assert_eq!(base.paged, None);
        assert!(check_regression(&base, &sample_report()).is_empty());

        // A current run without the large profile is not penalized.
        let mut cur = sample_report();
        cur.paged = None;
        assert!(check_regression(&base, &cur).is_empty());
    }

    #[test]
    fn gate_rejects_incomparable_datasets() {
        let base = sample_report();
        let mut cur = sample_report();
        cur.dataset.n = 9999;
        let v = check_regression(&base, &cur);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("incomparable"));
    }

    #[test]
    fn schema_version_mismatch_is_an_error() {
        let mut text = sample_report().to_json();
        text = text.replace("\"schema_version\": 1", "\"schema_version\": 999");
        assert!(BenchReport::from_json(&text).is_err());
    }

    #[test]
    fn percentiles_nearest_rank() {
        let ns: Vec<u64> = (1..=100).map(|i| i * 1_000_000).collect(); // 1..=100 ms
        assert_eq!(percentile_ms(&ns, 50.0), 50.0);
        assert_eq!(percentile_ms(&ns, 95.0), 95.0);
        assert_eq!(percentile_ms(&ns, 99.0), 99.0);
        assert_eq!(percentile_ms(&ns, 100.0), 100.0);
        assert_eq!(percentile_ms(&[], 50.0), 0.0);
        assert_eq!(percentile_ms(&[7_000_000], 99.0), 7.0);
    }
}

//! **V2 — success-probability validation** (the quality guarantee).
//!
//! Theorem (C2LSH): with `δ = 1/e` the scheme answers each `(R, c)`-NN
//! instance correctly with probability ≥ `1/2 − 1/e ≈ 0.132`; for
//! c-k-ANN this translates into the returned i-th neighbor being within
//! `c ×` the true i-th NN distance. The experiment measures, over many
//! queries and independent index draws, how often every rank satisfies
//! the c-bound — empirically far above the conservative bound, which is
//! exactly what the theory (a lower bound) predicts.

use c2lsh::{C2lshConfig, C2lshIndex};
use cc_bench::prep::prepare_workload;
use cc_bench::table::{f3, Table};
use cc_vector::synth::Profile;

fn main() {
    let scale = cc_bench::scale();
    let nq = cc_bench::queries();
    let k = 10;
    let c = 2u32;
    let mut t = Table::new(
        format!("V2: empirical c-ANN success rate (c = {c}, k = {k}, bound = 1/2 - 1/e = 0.132)"),
        &["dataset", "seed", "all_ranks_ok", "rank1_ok", "mean_ratio"],
    );
    for profile in [Profile::Mnist, Profile::Color] {
        let w = prepare_workload(profile, scale, nq, k, 37);
        for seed in [1u64, 2, 3] {
            let cfg = C2lshConfig::builder().bucket_width(2.184).seed(seed).build();
            let idx = C2lshIndex::build(&w.data, &cfg);
            let truth = w.truth_at(k);
            let mut all_ok = 0usize;
            let mut rank1_ok = 0usize;
            let mut ratio_acc = 0.0;
            for (qi, q) in w.queries.iter().enumerate() {
                let (nn, _) = idx.query(q, k);
                let ok_all = (0..k).all(|i| match (nn.get(i), truth[qi].get(i)) {
                    (Some(got), Some(want)) => got.dist <= c as f64 * want.dist.max(1e-12),
                    _ => false,
                });
                if ok_all {
                    all_ok += 1;
                }
                if let (Some(got), Some(want)) = (nn.first(), truth[qi].first()) {
                    if got.dist <= c as f64 * want.dist.max(1e-12) {
                        rank1_ok += 1;
                    }
                }
                ratio_acc += cc_vector::metrics::overall_ratio(&nn, &truth[qi]);
            }
            t.row(vec![
                profile.name().into(),
                seed.to_string(),
                f3(all_ok as f64 / nq as f64),
                f3(rank1_ok as f64 / nq as f64),
                f3(ratio_acc / nq as f64),
            ]);
        }
        eprintln!("[{} done]", profile.name());
    }
    t.print();
    t.save_csv("v2_success_prob");
}

//! `bench run` — the unified benchmark harness.
//!
//! Subsumes the shared plumbing of the `exp_*` binaries (dataset prep,
//! ground truth, the method registry) behind one entry point that emits
//! a machine-readable `BENCH_<tag>.json` report (see
//! [`cc_bench::report`]) next to the human-readable console table.
//!
//! ```text
//! bench run --smoke                      # CI preset + kernel microbench
//! bench run --profile color --k 20      # one paper profile
//! bench run --profile custom:8000x64    # arbitrary shape
//! bench run --profile large             # out-of-core: stream 1M points
//!                                        # through the paged disk tier
//! bench run --smoke --check results/bench_baseline.json   # CI gate
//! bench run --smoke --write-baseline results/bench_baseline.json
//! bench f9                               # buffer-pool sensitivity sweep
//! ```
//!
//! `--check` exits nonzero when the current run regresses against the
//! checked-in baseline (recall/ratio drift, qps collapse, early-abandon
//! speedup under its floor, observability overhead past its budget,
//! I/O-per-query or index-bytes growth, paged-tier compression or
//! parity-recall collapse) — that is the CI `bench-smoke` /
//! `disk-large` gate.
//!
//! `--profile large` never materializes the dataset: points are
//! generated in chunks and streamed into the page-file builder while
//! exact ground truth is folded into per-query top-k heaps, so peak RSS
//! stays far below the on-disk index size. The run records physical
//! I/O per query, on-disk index bytes, the buffer-pool hit rate and
//! peak RSS (VmHWM) in the report's `paged` section, plus an
//! equal-parameter parity sub-run against the in-memory backend.

use c2lsh::engine::SearchOptions;
use c2lsh::{C2lshConfig, C2lshIndex, PointMeta, Predicate};
use cc_bench::eval::evaluate_detailed;
use cc_bench::methods::{defaults, AnnIndex};
use cc_bench::prep::prepare_workload;
use cc_bench::report::{
    check_regression, percentile_ms, BenchReport, DatasetInfo, FilteredSearchReport,
    KernelBatchPoint, KernelsReport, MethodReport, ObsOverheadReport, PagedTierReport,
    VerifyKernelReport, MAX_OBS_OVERHEAD_PCT, SCHEMA_VERSION,
};
use cc_bench::table::{f1, f3, Table};
use cc_obs::ObsConfig;
use cc_service::ServerObs;
use cc_vector::dataset::Dataset;
use cc_vector::dist::{euclidean_sq, euclidean_sq_bounded};
use cc_vector::gt::{ground_truth, Neighbor};
use cc_vector::metrics::{overall_ratio, recall};
use cc_vector::scale::{mean_nn_distance, rescale};
use cc_vector::synth::Profile;
use cc_vector::topk::TopK;
use cc_vector::workload::Workload;
use std::hint::black_box;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

/// Registry keys accepted by `--methods`, in canonical order.
const METHOD_KEYS: [&str; 9] = [
    "c2lsh",
    "c2lsh-paged",
    "c2lsh-disk",
    "c2lsh-dyn",
    "qalsh",
    "e2lsh",
    "lsb",
    "multiprobe",
    "linear",
];

/// Methods the `--smoke` preset runs (dyn/lsb excluded to keep the CI
/// job fast; they stay available via `--methods`).
const SMOKE_METHODS: [&str; 7] =
    ["c2lsh", "c2lsh-paged", "c2lsh-disk", "qalsh", "e2lsh", "multiprobe", "linear"];

/// Paper-scale point count of the `large` profile (times `--scale`).
const LARGE_N: usize = 1_000_000;
/// Dimensionality of the `large` profile.
const LARGE_D: usize = 64;
/// Points per generated chunk during the large profile's streaming
/// ingest — the largest dataset slice ever resident in memory.
const LARGE_CHUNK: usize = 50_000;
/// Mixture components of the large profile's clustered distribution.
const LARGE_CLUSTERS: usize = 64;
/// Points in the large profile's equal-parameter parity sub-run.
const PARITY_N: usize = 100_000;

/// Streaming Gaussian-mixture generator for the large profile.
///
/// [`cc_vector::gen::Distribution::GaussianMixture`] draws its cluster
/// centers from the call's own seed, so generating a huge dataset in chunks with
/// per-chunk seeds would *move the mixture* between chunks. This
/// generator fixes the centers once and hands out chunks of the same
/// virtual stream: chunk contents depend on the chunk seed, the
/// distribution does not. Uniform data would stream trivially but is
/// the worst case for LSH contrast at d = 64 (distance concentration
/// drives recall toward zero for every method), which would make the
/// profile useless as a regression signal.
struct StreamMixture {
    centers: Vec<Vec<f64>>,
    sigma: f64,
}

impl StreamMixture {
    fn new(seed: u64, clusters: usize, d: usize, scale: f64, spread: f64) -> Self {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let centers =
            (0..clusters).map(|_| (0..d).map(|_| rng.gen::<f64>() * scale).collect()).collect();
        Self { centers, sigma: spread * scale }
    }

    /// Points `[start, start + n)` of the virtual stream, as a dataset.
    fn chunk(&self, seed: u64, start: usize, n: usize) -> Dataset {
        use rand::SeedableRng;
        let d = self.centers[0].len();
        let mut rng = rand::rngs::StdRng::seed_from_u64(
            seed ^ (start as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        let mut normal = cc_vector::gen::NormalSampler::new();
        let mut flat = Vec::with_capacity(n * d);
        for i in start..start + n {
            let c = &self.centers[i % self.centers.len()];
            for &cj in c {
                flat.push((cj + self.sigma * normal.sample(&mut rng)) as f32);
            }
        }
        Dataset::from_flat(d, flat)
    }
}

struct RunConfig {
    profile: Profile,
    large: bool,
    scale: f64,
    scale_explicit: bool,
    queries: usize,
    k: usize,
    seed: u64,
    reps: usize,
    pool_pages: Option<usize>,
    methods: Vec<String>,
    tag: String,
    out_dir: PathBuf,
    check: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    kernel: Option<c2lsh::Kernel>,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench run [options] | bench f9\n\
         \n\
         run options:\n\
           --smoke                preset: custom:4000x128, 40 queries, k=10, seed 42,\n\
                                  methods {smoke}, tag `smoke`, reps 7, kernel microbench on\n\
           --profile NAME         audio | mnist | color | labelme | custom:NxD | large\n\
                                  (`large` streams scale x 1M points through the paged\n\
                                  disk tier; scale defaults to 1.0 there)\n\
           --scale F              fraction of the paper-scale n (default {scale})\n\
           --queries N            held-out queries (default {queries})\n\
           --k N                  neighbors per query (default 10)\n\
           --seed N               RNG seed for data + every index (default 7)\n\
           --reps N               timing repetitions per method; qps and latency\n\
                                  percentiles come from the fastest rep (default 3)\n\
           --pool-pages N         buffer-pool capacity for `--profile large`\n\
                                  (default ~5% of the page file)\n\
           --methods a,b,c        subset of: {all}\n\
           --tag NAME             report tag; output file is BENCH_<tag>.json\n\
           --out DIR              output directory (default results/)\n\
           --check FILE           compare against a baseline report; exit 1 on regression\n\
           --write-baseline FILE  also write this run as the new baseline\n\
           --kernel NAME          pin the SIMD kernel: auto|scalar|sse2|avx2|neon\n\
                                  (default auto: CC_FORCE_SCALAR=1 or best detected)\n\
         \n\
         f9: sweep the pinned buffer pool's capacity over the paged tier\n\
         and write results/f9_buffer_pool.csv (recall / physical I/O vs\n\
         pool size; honors CC_BENCH_SCALE / CC_BENCH_QUERIES)",
        smoke = SMOKE_METHODS.join(","),
        scale = cc_bench::DEFAULT_SCALE,
        queries = cc_bench::DEFAULT_QUERIES,
        all = METHOD_KEYS.join(","),
    );
    std::process::exit(2);
}

fn parse_profile(s: &str) -> Profile {
    match s {
        "audio" => Profile::Audio,
        "mnist" => Profile::Mnist,
        "color" => Profile::Color,
        "labelme" => Profile::LabelMe,
        custom => {
            let Some(shape) = custom.strip_prefix("custom:") else {
                eprintln!("unknown profile `{s}`");
                usage();
            };
            let parts: Vec<_> = shape.split('x').collect();
            let parsed = match parts.as_slice() {
                [n, d] => n.parse().ok().zip(d.parse().ok()),
                _ => None,
            };
            let Some((n, d)) = parsed else {
                eprintln!("bad custom shape `{shape}` (expected NxD, e.g. 4000x128)");
                usage();
            };
            Profile::Custom { n, d }
        }
    }
}

fn parse_args() -> RunConfig {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("run") {
        usage();
    }
    let mut cfg = RunConfig {
        profile: Profile::Color,
        large: false,
        scale: cc_bench::scale(),
        scale_explicit: false,
        queries: cc_bench::queries(),
        k: 10,
        seed: 7,
        reps: 3,
        pool_pages: None,
        methods: METHOD_KEYS.iter().map(|s| s.to_string()).collect(),
        tag: String::new(),
        out_dir: PathBuf::from("results"),
        check: None,
        write_baseline: None,
        kernel: None,
    };
    fn need<'a>(it: &mut impl Iterator<Item = &'a String>, flag: &str) -> String {
        it.next()
            .unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage();
            })
            .clone()
    }
    let mut it = args.iter().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => {
                cfg.profile = Profile::Custom { n: 4000, d: 128 };
                cfg.scale = 1.0;
                cfg.queries = 40;
                cfg.k = 10;
                cfg.seed = 42;
                cfg.methods = SMOKE_METHODS.iter().map(|s| s.to_string()).collect();
                cfg.tag = "smoke".into();
                // The smoke profile is tiny but feeds the CI gate, so
                // buy noise robustness with extra best-of reps: on a
                // shared runner a single throttling dip otherwise
                // reads as a qps regression.
                cfg.reps = 7;
            }
            "--profile" => {
                let name = need(&mut it, "--profile");
                if name == "large" {
                    cfg.large = true;
                } else {
                    cfg.profile = parse_profile(&name);
                }
            }
            "--scale" => {
                cfg.scale = need(&mut it, "--scale").parse().unwrap_or_else(|_| usage());
                cfg.scale_explicit = true;
            }
            "--queries" => {
                cfg.queries = need(&mut it, "--queries").parse().unwrap_or_else(|_| usage())
            }
            "--k" => cfg.k = need(&mut it, "--k").parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = need(&mut it, "--seed").parse().unwrap_or_else(|_| usage()),
            "--reps" => {
                cfg.reps = need(&mut it, "--reps").parse().unwrap_or_else(|_| usage());
                if cfg.reps == 0 {
                    eprintln!("--reps must be >= 1");
                    usage();
                }
            }
            "--methods" => {
                cfg.methods = need(&mut it, "--methods").split(',').map(str::to_string).collect();
                for m in &cfg.methods {
                    if !METHOD_KEYS.contains(&m.as_str()) {
                        eprintln!("unknown method `{m}`");
                        usage();
                    }
                }
            }
            "--pool-pages" => {
                cfg.pool_pages =
                    Some(need(&mut it, "--pool-pages").parse().unwrap_or_else(|_| usage()))
            }
            "--tag" => cfg.tag = need(&mut it, "--tag"),
            "--out" => cfg.out_dir = PathBuf::from(need(&mut it, "--out")),
            "--check" => cfg.check = Some(PathBuf::from(need(&mut it, "--check"))),
            "--write-baseline" => {
                cfg.write_baseline = Some(PathBuf::from(need(&mut it, "--write-baseline")))
            }
            "--kernel" => {
                cfg.kernel = c2lsh::Kernel::parse(&need(&mut it, "--kernel")).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage();
                })
            }
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
        }
    }
    if cfg.large {
        // The large profile is paper-scale by definition: the global
        // CC_BENCH_SCALE default (meant to shrink the in-memory
        // profiles) does not apply unless --scale is passed explicitly.
        if !cfg.scale_explicit {
            cfg.scale = 1.0;
        }
        if cfg.tag.is_empty() {
            cfg.tag = "large".into();
        }
    }
    if cfg.tag.is_empty() {
        cfg.tag = cfg.profile.name().to_string();
    }
    cfg
}

/// Build a registry method over the shared (borrowed) dataset.
fn build_method<'d>(key: &str, data: &'d Dataset, seed: u64) -> Box<dyn AnnIndex + 'd> {
    match key {
        "c2lsh" => Box::new(defaults::c2lsh(data, seed)),
        "c2lsh-paged" => Box::new(defaults::c2lsh_paged(data, seed)),
        "c2lsh-disk" => Box::new(defaults::c2lsh_disk(data, seed)),
        "c2lsh-dyn" => Box::new(defaults::c2lsh_dyn(data, seed)),
        "qalsh" => Box::new(defaults::qalsh(data, seed)),
        "e2lsh" => Box::new(defaults::e2lsh(data, seed)),
        "lsb" => Box::new(defaults::lsb(data, seed)),
        "multiprobe" => Box::new(defaults::multiprobe(data, seed)),
        "linear" => Box::new(defaults::linear(data)),
        other => unreachable!("method keys are validated at parse time: {other}"),
    }
}

/// The seed's verification kernel, kept verbatim so the microbenchmark
/// measures the speedup the issue asks for ("over old kernel"): four
/// accumulator lanes, no early abandonment.
#[inline]
fn old_euclidean_sq(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "dimension mismatch: {} vs {}", a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let (ac, ar) = a.split_at(a.len() - a.len() % 4);
    let (bc, br) = b.split_at(b.len() - b.len() % 4);
    for (ca, cb) in ac.chunks_exact(4).zip(bc.chunks_exact(4)) {
        for i in 0..4 {
            let d = ca[i] - cb[i];
            acc[i] += d * d;
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ar.iter().zip(br) {
        let d = x - y;
        tail += d * d;
    }
    (acc[0] + acc[1]) as f64 + (acc[2] + acc[3]) as f64 + tail as f64
}

/// Microbenchmark the verification hot path, old pipeline vs new, over
/// the same candidate stream (every workload query against a fixed
/// slice of the base data — the shape of the engine's verify phase).
///
/// * **old**: the seed's verify phase — 4-lane kernel, a fresh
///   candidate `Vec` per query, `sqrt` for every candidate, one full
///   sort at the end.
/// * **new**: this PR's verify phase — 8-lane early-abandon kernel
///   feeding a live top-k bound, reused scratch buffers.
///
/// Best-of-3 wall times; returns per-candidate costs, the speedup, and
/// the fraction of candidates the bounded kernel cut short.
fn verify_kernel_bench(w: &Workload, k: usize) -> VerifyKernelReport {
    let n_cand = w.n().min(2000);
    let per_pass = (w.queries.len() * n_cand) as f64;
    let mut old_best = f64::INFINITY;
    let mut new_best = f64::INFINITY;
    let mut abandoned = 0u64;
    let by_dist_then_id =
        |x: &Neighbor, y: &Neighbor| x.dist.total_cmp(&y.dist).then(x.id.cmp(&y.id));
    for rep in 0..3 {
        let t0 = Instant::now();
        for q in w.queries.iter() {
            let mut cands: Vec<Neighbor> = Vec::new();
            for (id, v) in w.data.iter().take(n_cand).enumerate() {
                let d_sq = old_euclidean_sq(q, v);
                cands.push(Neighbor::new(id as u32, d_sq.sqrt()));
            }
            cands.sort_by(by_dist_then_id);
            cands.truncate(k);
            black_box(cands.last().map(|nb| nb.dist));
        }
        old_best = old_best.min(t0.elapsed().as_secs_f64());

        let mut cands: Vec<Neighbor> = Vec::new();
        let mut topk = TopK::new(k);
        let mut pass_abandoned = 0u64;
        let t0 = Instant::now();
        for q in w.queries.iter() {
            cands.clear();
            topk.reset(k);
            for (id, v) in w.data.iter().take(n_cand).enumerate() {
                match euclidean_sq_bounded(q, v, topk.bound_sq()) {
                    Some(d_sq) => {
                        topk.insert(d_sq, id as u32);
                        cands.push(Neighbor::new(id as u32, d_sq.sqrt()));
                    }
                    None => pass_abandoned += 1,
                }
            }
            cands.sort_by(by_dist_then_id);
            cands.truncate(k);
            black_box(cands.last().map(|nb| nb.dist));
        }
        new_best = new_best.min(t0.elapsed().as_secs_f64());
        if rep == 0 {
            abandoned = pass_abandoned; // deterministic across reps
        }
    }
    VerifyKernelReport {
        old_ns_per_cand: old_best * 1e9 / per_pass,
        new_ns_per_cand: new_best * 1e9 / per_pass,
        speedup: old_best / new_best,
        abandon_rate: abandoned as f64 / per_pass,
    }
}

/// Microbenchmark the SIMD kernels against the scalar oracle on both
/// hot loops, plus the batched-projection sweep.
///
/// * **ns/hash**: one hash = one `d`-dim dot product + offset, over an
///   `m = 128` row matrix, queries hashed one at a time — the hashing
///   phase's unit of work. Measured for the scalar kernel and the
///   dispatched one (identical under `CC_FORCE_SCALAR=1`).
/// * **ns/cand**: one full-dimension bounded distance (bound = ∞ so
///   both kernels do identical work; the abandon *decision* path is
///   covered by the equivalence proptests, its end-to-end payoff by
///   [`verify_kernel_bench`]).
/// * **batch sweep**: dispatched-kernel [`project_batch`] cost per hash
///   as the number of coalesced queries grows — the curve that
///   justifies the batching worker's coalescing.
///
/// Best-of-3 wall times throughout; both kernels return bit-identical
/// results by contract, so only time differs.
///
/// [`project_batch`]: c2lsh::kernels::KernelDispatch::project_batch
fn kernels_bench(w: &Workload) -> KernelsReport {
    use c2lsh::kernels::{self, Kernel, KernelDispatch};
    let kd = *kernels::dispatch();
    let scalar = KernelDispatch::new(Kernel::Scalar).expect("scalar is always available");
    let d = w.data.dim();
    let m = 128usize;

    // Deterministic pseudo-random family (xorshift; no rand dependency
    // needed here and the exact values are irrelevant to timing).
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 40) as f32 / (1u32 << 24) as f32 - 0.5
    };
    let matrix: Vec<f32> = (0..m * d).map(|_| next()).collect();
    let offsets: Vec<f64> = (0..m).map(|_| next() as f64).collect();

    let nq = w.queries.len().max(1);
    let single_reps = (20_000 / nq).max(1);
    let mut out = vec![0.0f64; m];
    let mut time_single = |k: &KernelDispatch| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t0 = Instant::now();
            for _ in 0..single_reps {
                for q in w.queries.iter() {
                    k.project_family(&matrix, d, q, &offsets, &mut out);
                    black_box(out[0]);
                }
            }
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best * 1e9 / (single_reps * nq * m) as f64
    };
    let scalar_ns_per_hash = time_single(&scalar);
    let dispatched_ns_per_hash = time_single(&kd);

    let n_cand = w.n().min(2000);
    let cand_reps = (40_000 / nq.max(1)).clamp(1, 100);
    let time_cand = |k: &KernelDispatch| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t0 = Instant::now();
            for _ in 0..cand_reps {
                for q in w.queries.iter() {
                    for v in w.data.iter().take(n_cand) {
                        black_box(k.euclidean_sq_bounded(q, v, f64::INFINITY));
                    }
                }
            }
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best * 1e9 / (cand_reps * nq * n_cand) as f64
    };
    let scalar_ns_per_cand = time_cand(&scalar);
    let dispatched_ns_per_cand = time_cand(&kd);

    let batch_sweep = [1usize, 2, 4, 8, 16, 32]
        .into_iter()
        .map(|batch| {
            // A coalesced batch of `batch` queries, drawn cyclically
            // from the workload's query set.
            let mut flat = Vec::with_capacity(batch * d);
            for i in 0..batch {
                flat.extend_from_slice(w.queries.get(i % nq));
            }
            let qs = Dataset::from_flat(d, flat);
            let mut out = vec![0.0f64; batch * m];
            let reps = (40_000 / batch).max(1);
            let mut best = f64::INFINITY;
            for _ in 0..5 {
                let t0 = Instant::now();
                for _ in 0..reps {
                    kd.project_batch(&matrix, d, &qs, &offsets, &mut out);
                    black_box(out[0]);
                }
                best = best.min(t0.elapsed().as_secs_f64());
            }
            KernelBatchPoint { batch, ns_per_hash: best * 1e9 / (reps * batch * m) as f64 }
        })
        .collect();

    KernelsReport {
        kernel: kd.kernel().name().into(),
        scalar_ns_per_hash,
        dispatched_ns_per_hash,
        hash_speedup: scalar_ns_per_hash / dispatched_ns_per_hash,
        scalar_ns_per_cand,
        dispatched_ns_per_cand,
        cand_speedup: scalar_ns_per_cand / dispatched_ns_per_cand,
        batch_sweep,
    }
}

/// A/B-measure the observability layer's query-path cost, mirroring
/// the service's flush loop exactly: the engine batch runs with the
/// [`SearchOptions`] the server would pick, then every answer flows
/// through the same per-query bookkeeping
/// ([`ServerObs::record_query`], sampled trace accounting, slow-log
/// consideration).
///
/// * **base**: a disabled registry — the `cc-service` default without
///   `--metrics-addr`. Stage timing off, no span capture, every
///   registry call gated out.
/// * **obs**: an enabled registry at the service's default sampling
///   (trace every 64th query, 100 ms slow threshold) — stage timing
///   on, histograms fed per query.
///
/// Both passes run the same workload on the same index; passes are
/// interleaved and the fastest of five is kept per arm,
/// so the overhead percentage is a within-run relative measure that
/// does not depend on the machine's absolute speed.
fn obs_overhead_bench(w: &Workload, k: usize, seed: u64) -> ObsOverheadReport {
    const OBS_BENCH_REPS: usize = 11;
    // The smoke query set finishes in single-digit milliseconds; on a
    // noisy single-vCPU runner scheduler ticks and steal-time cycles
    // swing such a pass by several percent. Replay the batch enough
    // times that one pass spans hundreds of milliseconds — long enough
    // to average over the drift the paired estimator below can't
    // cancel.
    const OBS_BENCH_ROUNDS: usize = 64;
    let cfg = c2lsh::C2lshConfig::builder().bucket_width(2.184).seed(seed).build();
    let index = c2lsh::C2lshIndex::build(&w.data, &cfg);
    let queries = (w.queries.len() * OBS_BENCH_ROUNDS) as f64;

    let pass = |obs: &ServerObs| -> f64 {
        let sample_every = if obs.on() { obs.config().trace_sample_every } else { 0 };
        let opts = SearchOptions {
            timing: true,
            stage_timing: obs.on(),
            capture_spans: false,
            trace_every: sample_every,
            ..SearchOptions::default()
        };
        let t0 = Instant::now();
        for _ in 0..OBS_BENCH_ROUNDS {
            let flush_t0 = Instant::now();
            let (results, _agg) = index.query_batch_with(&w.queries, k, &opts);
            obs.queries.add(results.len() as u64);
            obs.batches.inc();
            let answered_at = Instant::now();
            for (nn, qstats) in &results {
                let total_ns = answered_at.saturating_duration_since(flush_t0).as_nanos() as u64;
                obs.record_query(0, total_ns, &qstats.stage);
                let traced = !qstats.spans.is_empty() && sample_every > 0;
                if traced {
                    obs.traces.inc();
                    obs.maybe_log_slow(obs.alloc_trace_id(), total_ns, k as u32, &qstats.spans);
                } else {
                    obs.maybe_log_slow(0, total_ns, k as u32, &[]);
                }
                black_box(nn.last().map(|nb| nb.dist));
            }
            obs.record_flush(flush_t0.elapsed().as_nanos() as u64, results.len() as u64, None);
        }
        t0.elapsed().as_secs_f64()
    };

    let base_obs = ServerObs::disabled();
    let live_obs = ServerObs::new(ObsConfig::all_on());
    // A shared runner's effective clock drifts over seconds, so
    // comparing each arm's independent best-of-N confounds drift with
    // the measured overhead. Each base pass is instead paired with the
    // obs pass right after it — adjacent in time, so drift mostly
    // cancels within the pair — and the median paired overhead is the
    // reported figure (the bests still give the headline qps).
    let (mut base_best, mut obs_best) = (f64::INFINITY, f64::INFINITY);
    let mut paired_pct = Vec::with_capacity(OBS_BENCH_REPS);
    for rep in 0..OBS_BENCH_REPS {
        // Alternate which arm goes first so a warm-up or turbo effect
        // on the pair's first pass doesn't bias every sample the same
        // way.
        let (base_s, obs_s) = if rep % 2 == 0 {
            let b = pass(&base_obs);
            (b, pass(&live_obs))
        } else {
            let o = pass(&live_obs);
            (pass(&base_obs), o)
        };
        base_best = base_best.min(base_s);
        obs_best = obs_best.min(obs_s);
        paired_pct.push((obs_s - base_s) / obs_s * 100.0);
    }
    paired_pct.sort_by(f64::total_cmp);
    ObsOverheadReport {
        base_qps: queries / base_best,
        obs_qps: queries / obs_best,
        overhead_pct: paired_pct[paired_pct.len() / 2],
    }
}

/// A/B-measure filtered search against the naive plan on the same
/// index.
///
/// Every third point gets the target label (64 generator clusters and
/// a modulus of 3 are coprime, so every cluster mixes all labels and
/// the predicate is genuinely selective near every query). The two
/// arms:
///
/// * **filtered**: the predicate runs inside the collision-counting
///   loop — points failing it are rejected *before*
///   `euclidean_sq_bounded`, so they never count as verified.
/// * **post-filter**: query unfiltered with an inflated `k'`
///   (starting at `k / selectivity`, doubling until the kept top-`k`
///   reaches the filtered arm's recall on the matching subset), then
///   drop non-matching answers.
///
/// Recall for both arms is measured against exact k-NN over the
/// matching subset. The gate ([`check_regression`]) demands the
/// filtered arm verify strictly fewer candidates per query at
/// equal-or-better post-filter recall.
fn filtered_search_bench(w: &Workload, k: usize, seed: u64) -> FilteredSearchReport {
    const LABELS: u32 = 3;
    let n = w.n();
    let metas: Vec<PointMeta> = (0..n).map(|i| PointMeta::labeled(i as u32 % LABELS)).collect();
    let predicate = Predicate::label(1);
    let matching = metas.iter().filter(|m| predicate.matches(**m)).count();
    let selectivity = matching as f64 / n as f64;

    let cfg = C2lshConfig::builder().bucket_width(2.184).seed(seed).build();
    let index = C2lshIndex::build(&w.data, &cfg).with_meta(metas.clone());

    // Exact k-NN over the matching subset — the ground truth both arms
    // are scored against.
    let truth: Vec<Vec<u32>> = w
        .queries
        .iter()
        .map(|q| {
            let mut subset: Vec<Neighbor> = w
                .data
                .iter()
                .enumerate()
                .filter(|(id, _)| predicate.matches(metas[*id]))
                .map(|(id, v)| Neighbor::new(id as u32, euclidean_sq(q, v).sqrt()))
                .collect();
            subset.sort_by(|x, y| x.dist.total_cmp(&y.dist).then(x.id.cmp(&y.id)));
            subset.truncate(k);
            subset.into_iter().map(|nb| nb.id).collect()
        })
        .collect();
    let truth_size: usize = truth.iter().map(Vec::len).sum();

    let opts = SearchOptions { filter: Some(predicate), ..SearchOptions::default() };
    let (mut f_verified, mut f_rejected, mut f_hits) = (0u64, 0u64, 0usize);
    for (qi, q) in w.queries.iter().enumerate() {
        let (nn, stats) = index.query_with(q, k, &opts);
        f_verified += stats.candidates_verified as u64;
        f_rejected += stats.candidates_filtered as u64;
        f_hits += nn.iter().filter(|nb| truth[qi].contains(&nb.id)).count();
    }
    let filtered_recall = f_hits as f64 / truth_size.max(1) as f64;

    // Naive arm: inflate k' until post-filtering stops costing recall.
    let mut postfilter_k = ((k as f64 / selectivity).ceil() as usize).clamp(k + 1, n);
    let (mut p_verified, mut postfilter_recall);
    loop {
        p_verified = 0u64;
        let mut p_hits = 0usize;
        for (qi, q) in w.queries.iter().enumerate() {
            let (nn, stats) = index.query(q, postfilter_k);
            p_verified += stats.candidates_verified as u64;
            p_hits += nn
                .iter()
                .filter(|nb| predicate.matches(metas[nb.id as usize]))
                .take(k)
                .filter(|nb| truth[qi].contains(&nb.id))
                .count();
        }
        postfilter_recall = p_hits as f64 / truth_size.max(1) as f64;
        if postfilter_recall >= filtered_recall || postfilter_k >= n {
            break;
        }
        postfilter_k = (postfilter_k * 2).min(n);
    }

    let queries = w.queries.len().max(1) as f64;
    FilteredSearchReport {
        selectivity,
        postfilter_k,
        filtered_recall,
        postfilter_recall,
        filtered_verified_per_query: f_verified as f64 / queries,
        postfilter_verified_per_query: p_verified as f64 / queries,
        rejected_per_query: f_rejected as f64 / queries,
    }
}

fn main() -> ExitCode {
    match std::env::args().nth(1).as_deref() {
        Some("f9") => f9_main(),
        Some("run") => {
            let cfg = parse_args();
            // Pin the kernel before any index builds or hashes.
            if let Some(k) = cfg.kernel {
                if let Err(e) = c2lsh::kernels::init(k) {
                    eprintln!("--kernel: {e}");
                    return ExitCode::from(2);
                }
            }
            if cfg.large {
                run_large(&cfg)
            } else {
                run_standard(&cfg)
            }
        }
        _ => usage(),
    }
}

/// Peak resident set size (VmHWM) of this process, in bytes; 0 when
/// `/proc` is unavailable.
fn peak_rss_bytes() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0.0 };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: f64 = rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0.0);
            return kb * 1024.0;
        }
    }
    0.0
}

/// Write `BENCH_<tag>.json`, optionally refresh the baseline, and run
/// the regression gate — the shared tail of every `bench run` flavor.
fn emit_report(report: &BenchReport, cfg: &RunConfig) -> ExitCode {
    if std::fs::create_dir_all(&cfg.out_dir).is_err() {
        eprintln!("error: cannot create {}", cfg.out_dir.display());
        return ExitCode::FAILURE;
    }
    let out_path = cfg.out_dir.join(format!("BENCH_{}.json", cfg.tag));
    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("error: cannot write {}: {e}", out_path.display());
        return ExitCode::FAILURE;
    }
    println!("[saved {}]", out_path.display());

    if let Some(path) = &cfg.write_baseline {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("error: cannot write baseline {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("[saved baseline {}]", path.display());
    }

    if let Some(path) = &cfg.check {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read baseline {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let baseline = match BenchReport::from_json(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: bad baseline {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let violations = check_regression(&baseline, report);
        if violations.is_empty() {
            println!("regression gate: PASS vs {}", path.display());
        } else {
            eprintln!("regression gate: FAIL vs {}", path.display());
            for v in &violations {
                eprintln!("  - {v}");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn run_standard(cfg: &RunConfig) -> ExitCode {
    let (n_paper, d) = cfg.profile.shape();
    let n = ((n_paper as f64 * cfg.scale) as usize).max(1);
    let dataset_name = match cfg.profile {
        Profile::Custom { n, d } => format!("custom-{n}x{d}"),
        p => p.name().to_string(),
    };
    println!(
        "bench run: {dataset_name} n={n} d={d} queries={q} k={k} seed={s}",
        q = cfg.queries,
        k = cfg.k,
        s = cfg.seed
    );

    let w = prepare_workload(cfg.profile, cfg.scale, cfg.queries, cfg.k.max(100), cfg.seed);

    println!("kernel microbench: old verify pipeline vs early-abandon...");
    let verify = verify_kernel_bench(&w, cfg.k);
    println!(
        "  old {:.1} ns/cand, new {:.1} ns/cand -> {:.2}x speedup ({:.0}% abandoned)",
        verify.old_ns_per_cand,
        verify.new_ns_per_cand,
        verify.speedup,
        verify.abandon_rate * 100.0
    );

    println!("kernels: scalar oracle vs dispatched SIMD on both hot loops...");
    let kernels = kernels_bench(&w);
    println!(
        "  kernel {}: hash {:.1} -> {:.1} ns ({:.2}x), dist {:.1} -> {:.1} ns/cand ({:.2}x)",
        kernels.kernel,
        kernels.scalar_ns_per_hash,
        kernels.dispatched_ns_per_hash,
        kernels.hash_speedup,
        kernels.scalar_ns_per_cand,
        kernels.dispatched_ns_per_cand,
        kernels.cand_speedup,
    );
    let sweep: Vec<String> =
        kernels.batch_sweep.iter().map(|p| format!("{}:{:.1}", p.batch, p.ns_per_hash)).collect();
    println!("  batch sweep (queries:ns/hash): {}", sweep.join("  "));

    println!("observability overhead: query path with registry off vs on...");
    let obs_overhead = obs_overhead_bench(&w, cfg.k, cfg.seed);
    println!(
        "  {:.1} qps off, {:.1} qps on -> {:.2}% overhead (budget {MAX_OBS_OVERHEAD_PCT}%)",
        obs_overhead.base_qps, obs_overhead.obs_qps, obs_overhead.overhead_pct
    );

    println!("filtered search: in-loop predicate vs unfiltered + post-filter...");
    let filtered_search = filtered_search_bench(&w, cfg.k, cfg.seed);
    println!(
        "  selectivity {:.2}: filtered {:.1} verified/query (recall {:.3}, {:.1} rejected \
         pre-verify) vs post-filter k'={} {:.1} verified/query (recall {:.3})",
        filtered_search.selectivity,
        filtered_search.filtered_verified_per_query,
        filtered_search.filtered_recall,
        filtered_search.rejected_per_query,
        filtered_search.postfilter_k,
        filtered_search.postfilter_verified_per_query,
        filtered_search.postfilter_recall,
    );

    let mut table = Table::new(
        format!("bench run · {dataset_name} · k={}", cfg.k),
        &[
            "method",
            "qps",
            "p50ms",
            "p95ms",
            "p99ms",
            "recall",
            "ratio",
            "verified",
            "abandoned",
            "io",
            "MiB",
        ],
    );
    let mut methods = Vec::new();
    for key in &cfg.methods {
        let index = build_method(key, &w.data, cfg.seed);
        // Quality metrics and counters are deterministic across reps;
        // timing is not (single-vCPU CI runners are noisy), so qps and
        // the latency percentiles come from the fastest rep.
        let (row, agg, mut lat) = evaluate_detailed(index.as_ref(), &w, cfg.k);
        for _ in 1..cfg.reps {
            let (_, _, l) = evaluate_detailed(index.as_ref(), &w, cfg.k);
            if l.iter().sum::<u64>() < lat.iter().sum::<u64>() {
                lat = l;
            }
        }
        let total_s: f64 = lat.iter().map(|&ns| ns as f64 / 1e9).sum();
        let m = MethodReport {
            name: row.method.clone(),
            qps: if total_s > 0.0 { lat.len() as f64 / total_s } else { 0.0 },
            p50_ms: percentile_ms(&lat, 50.0),
            p95_ms: percentile_ms(&lat, 95.0),
            p99_ms: percentile_ms(&lat, 99.0),
            recall: row.recall,
            ratio: row.ratio,
            verified_per_query: row.verified,
            abandoned_per_query: agg.abandoned as f64 / agg.queries.max(1) as f64,
            io_per_query: row.io_reads,
            index_bytes: index.size_bytes() as f64,
        };
        table.row(vec![
            m.name.clone(),
            f1(m.qps),
            f3(m.p50_ms),
            f3(m.p95_ms),
            f3(m.p99_ms),
            f3(m.recall),
            f3(m.ratio),
            f1(m.verified_per_query),
            f1(m.abandoned_per_query),
            f1(m.io_per_query),
            f3(m.index_bytes / (1024.0 * 1024.0)),
        ]);
        methods.push(m);
    }
    table.print();

    let report = BenchReport {
        schema_version: SCHEMA_VERSION,
        tag: cfg.tag.clone(),
        dataset: DatasetInfo { name: dataset_name, n: w.n(), d, queries: w.queries.len() },
        k: cfg.k,
        seed: cfg.seed,
        verify: Some(verify),
        kernels: Some(kernels),
        obs_overhead: Some(obs_overhead),
        filtered_search: Some(filtered_search),
        paged: None,
        methods,
    };

    emit_report(&report, cfg)
}

/// `bench run --profile large` — stream `scale × 1M` synthetic points
/// through the paged disk tier without ever materializing the dataset.
///
/// Chunks are generated, normalized and appended to the page-file
/// builder one at a time; exact ground truth is folded into per-query
/// top-k heaps during the same pass (early-abandoned against the
/// current k-th distance), so the working set is one chunk plus the
/// heaps regardless of `n`. After the out-of-core query phase the run
/// records peak RSS (VmHWM) and finishes with an equal-parameter
/// parity sub-run: in-memory and paged backends built on the same
/// materialized slice, gated to within [`cc_bench::report::RECALL_TOLERANCE`].
fn run_large(cfg: &RunConfig) -> ExitCode {
    let n = ((LARGE_N as f64 * cfg.scale) as usize).max(10_000);
    let d = LARGE_D;
    let k = cfg.k;
    let dataset_name = format!("large-mixture-{n}x{d}");
    println!(
        "bench run: {dataset_name} (streaming ingest, never materialized) queries={q} k={k} seed={s}",
        q = cfg.queries,
        s = cfg.seed
    );

    // Fixed-center mixture: chunks with per-chunk seeds all draw from
    // the same distribution (see [`StreamMixture`]).
    let mix = StreamMixture::new(cfg.seed, LARGE_CLUSTERS, d, 10.0, 0.02);
    // Unit-NN normalization factor from a probe chunk — the paper's
    // protocol, estimated on a sample because the full set never
    // exists in memory.
    let probe = mix.chunk(cfg.seed, 0, 20_000.min(n));
    let factor = 1.0 / mean_nn_distance(&probe, 50);
    drop(probe);
    let queries = rescale(&mix.chunk(cfg.seed ^ 0x9e37_79b9, 0, cfg.queries.max(1)), factor);

    // The paper's default verification budget (β·n = 100) is tuned for
    // its ≤ 68k-point datasets; held constant to 1M points it truncates
    // the candidate list long before the true neighbors are verified
    // and recall decays with n for *every* backend. Scale the budget
    // sublinearly (0.2% of n, floor 100) so the million-point profile
    // measures the disk tier, not budget starvation.
    let beta = c2lsh::config::Beta::Count((n as u64 / 500).max(100));
    let config = C2lshConfig::builder().bucket_width(2.184).seed(cfg.seed).beta(beta).build();

    let scratch = std::env::temp_dir().join(format!("cc-bench-large-{}.ccpg", std::process::id()));
    let t_ingest = Instant::now();
    let mut builder = match c2lsh::PagedBuilder::create(&scratch, d, n, &config) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: cannot create page file {}: {e}", scratch.display());
            return ExitCode::FAILURE;
        }
    };
    let mut heaps: Vec<TopK> = (0..queries.len()).map(|_| TopK::new(k)).collect();
    let mut next_id: u32 = 0;
    let mut chunk_i: u64 = 0;
    while (next_id as usize) < n {
        let take = LARGE_CHUNK.min(n - next_id as usize);
        let chunk = rescale(
            &mix.chunk(cfg.seed.wrapping_add(1000 + chunk_i), next_id as usize, take),
            factor,
        );
        for row in chunk.iter() {
            if let Err(e) = builder.append(row) {
                eprintln!("error: ingest failed at point {next_id}: {e}");
                return ExitCode::FAILURE;
            }
            for (qi, q) in queries.iter().enumerate() {
                if let Some(d_sq) = euclidean_sq_bounded(q, row, heaps[qi].bound_sq()) {
                    heaps[qi].insert(d_sq, next_id);
                }
            }
            next_id += 1;
        }
        chunk_i += 1;
        if chunk_i.is_multiple_of(4) || (next_id as usize) == n {
            println!("  ingested {next_id}/{n} points ({:.0}s)", t_ingest.elapsed().as_secs_f64());
        }
    }
    let truth: Vec<Vec<Neighbor>> = heaps.iter_mut().map(TopK::drain_sorted).collect();
    let store = match builder.finish(1) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: finishing the page file failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut store = store.delete_file_on_drop();
    let ingest_seconds = t_ingest.elapsed().as_secs_f64();

    let file_pages = (store.file_bytes() as usize).div_ceil(cc_storage::PAGE_SIZE);
    let pool_pages = cfg.pool_pages.unwrap_or((file_pages / 20).max(256));
    store.set_pool_pages(pool_pages);
    let index_bytes = store.posting_bytes() as f64;
    let compression_ratio =
        store.uncompressed_posting_bytes() as f64 / store.posting_bytes().max(1) as f64;
    println!(
        "  page file: {file_pages} pages ({:.1} MiB), postings {:.1} MiB compressed \
         ({compression_ratio:.2}x vs plain layout), buffer pool {pool_pages} pages",
        store.file_bytes() as f64 / (1024.0 * 1024.0),
        index_bytes / (1024.0 * 1024.0),
    );

    // Out-of-core query phase: every posting and every vector comes
    // through the buffer pool; io_per_query counts physical reads
    // (pool misses), the paper's cost model for a cached disk index.
    let opts = SearchOptions { timing: true, ..SearchOptions::default() };
    let nq = queries.len() as f64;
    let mut lat = Vec::with_capacity(queries.len());
    let (mut rec_sum, mut ratio_sum) = (0.0f64, 0.0f64);
    let (mut verified, mut abandoned) = (0u64, 0u64);
    for (qi, q) in queries.iter().enumerate() {
        let t0 = Instant::now();
        let (nn, stats) = store.query_with(q, k, &opts);
        lat.push(t0.elapsed().as_nanos() as u64);
        rec_sum += recall(&nn, &truth[qi]);
        ratio_sum += overall_ratio(&nn, &truth[qi]);
        verified += stats.candidates_verified as u64;
        abandoned += stats.candidates_abandoned as u64;
    }
    let io_per_query = store.physical_reads() as f64 / nq;
    let pool_stats = store.pool_stats();
    // VmHWM is monotonic, so read it after the query phase and before
    // the (materialized) parity sub-run inflates it.
    let peak_rss = peak_rss_bytes();
    println!(
        "  queries: recall {:.3}, {:.1} physical reads/query, pool hit rate {:.3}, \
         peak RSS {:.0} MiB",
        rec_sum / nq,
        io_per_query,
        pool_stats.hit_ratio(),
        peak_rss / (1024.0 * 1024.0),
    );

    // Equal-parameter parity: both backends on the same materialized
    // slice, same config — the paged tier must not trade recall away.
    let parity_n = PARITY_N.min(n);
    let parity_data = rescale(&mix.chunk(cfg.seed.wrapping_add(77), 0, parity_n), factor);
    let parity_truth = ground_truth(&parity_data, &queries, k);
    let mem_index = C2lshIndex::build(&parity_data, &config);
    let parity_path =
        std::env::temp_dir().join(format!("cc-bench-parity-{}.ccpg", std::process::id()));
    let parity_pool = ((parity_n * d * 4 / cc_storage::PAGE_SIZE) / 20).max(64);
    let parity_store =
        match c2lsh::PagedStore::build(&parity_data, &config, &parity_path, parity_pool) {
            Ok(s) => s.delete_file_on_drop(),
            Err(e) => {
                eprintln!("error: parity page file failed: {e}");
                return ExitCode::FAILURE;
            }
        };
    let (mut mem_rec, mut paged_rec) = (0.0f64, 0.0f64);
    for (qi, q) in queries.iter().enumerate() {
        let (nn_mem, _) = mem_index.query(q, k);
        mem_rec += recall(&nn_mem, &parity_truth[qi]);
        let (nn_paged, _) = parity_store.query(q, k);
        paged_rec += recall(&nn_paged, &parity_truth[qi]);
    }
    let (mem_parity_recall, paged_parity_recall) = (mem_rec / nq, paged_rec / nq);
    println!(
        "  parity @ n={parity_n}: in-memory recall {mem_parity_recall:.3}, \
         paged recall {paged_parity_recall:.3}"
    );

    let total_s: f64 = lat.iter().map(|&ns| ns as f64 / 1e9).sum();
    let row = MethodReport {
        name: "C2LSH(paged)".into(),
        qps: if total_s > 0.0 { lat.len() as f64 / total_s } else { 0.0 },
        p50_ms: percentile_ms(&lat, 50.0),
        p95_ms: percentile_ms(&lat, 95.0),
        p99_ms: percentile_ms(&lat, 99.0),
        recall: rec_sum / nq,
        ratio: ratio_sum / nq,
        verified_per_query: verified as f64 / nq,
        abandoned_per_query: abandoned as f64 / nq,
        io_per_query,
        index_bytes,
    };
    let paged = PagedTierReport {
        points: n,
        ingest_seconds,
        io_per_query,
        index_bytes,
        file_bytes: store.file_bytes() as f64,
        bufpool_pages: pool_pages,
        bufpool_hit_rate: pool_stats.hit_ratio(),
        compression_ratio,
        peak_rss_bytes: peak_rss,
        parity_points: parity_n,
        paged_parity_recall,
        mem_parity_recall,
    };
    let report = BenchReport {
        schema_version: SCHEMA_VERSION,
        tag: cfg.tag.clone(),
        dataset: DatasetInfo { name: dataset_name, n, d, queries: queries.len() },
        k,
        seed: cfg.seed,
        verify: None,
        kernels: None,
        obs_overhead: None,
        filtered_search: None,
        paged: Some(paged),
        methods: vec![row],
    };
    emit_report(&report, cfg)
}

/// `bench f9` — sweep the pinned buffer pool's capacity over a real
/// paged index and record recall / physical I/O per pool size, writing
/// `results/f9_buffer_pool.csv` (figure 9's curve). Unlike the old
/// trace-replay simulation, every row here queries the actual
/// `PagedStore` through the actual pool, so hit rates include vector
/// pages and posting pages alike.
fn f9_main() -> ExitCode {
    let scale = cc_bench::scale();
    let nq = cc_bench::queries();
    let k = 10;
    let mut t = Table::new(
        format!("F9: pinned buffer-pool sensitivity of the paged tier (k = {k})"),
        &["dataset", "file_pages", "pool_pages", "pool_frac", "hit_rate", "io_per_query", "recall"],
    );
    for profile in [Profile::Mnist, Profile::Color] {
        let w = prepare_workload(profile, scale, nq, k, 59);
        let cfg = C2lshConfig::builder().bucket_width(2.184).seed(59).build();
        let path = std::env::temp_dir().join(format!(
            "cc-bench-f9-{}-{}.ccpg",
            std::process::id(),
            profile.name()
        ));
        let mut store = match c2lsh::PagedStore::build(&w.data, &cfg, &path, 1) {
            Ok(s) => s.delete_file_on_drop(),
            Err(e) => {
                eprintln!("error: paged build failed for {}: {e}", profile.name());
                return ExitCode::FAILURE;
            }
        };
        let truth = w.truth_at(k);
        let file_pages = (store.file_bytes() as usize).div_ceil(cc_storage::PAGE_SIZE);
        for frac in [0.01f64, 0.05, 0.1, 0.25, 0.5] {
            let pages = ((file_pages as f64 * frac) as usize).max(1);
            // A fresh pool per capacity: hit rates and physical reads
            // below cover exactly this sweep point's query pass.
            store.set_pool_pages(pages);
            let mut rec = 0.0;
            for (qi, q) in w.queries.iter().enumerate() {
                let (nn, _) = store.query(q, k);
                rec += recall(&nn, &truth[qi]);
            }
            let s = store.pool_stats();
            t.row(vec![
                profile.name().into(),
                file_pages.to_string(),
                pages.to_string(),
                f3(frac),
                f3(s.hit_ratio()),
                f1(store.physical_reads() as f64 / nq.max(1) as f64),
                f3(rec / nq.max(1) as f64),
            ]);
        }
        eprintln!("[{} done]", profile.name());
    }
    t.print();
    t.save_csv("f9_buffer_pool");
    ExitCode::SUCCESS
}

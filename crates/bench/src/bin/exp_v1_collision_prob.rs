//! **V1 — collision-probability validation** (theory check).
//!
//! The entire parameter derivation rests on the closed-form p-stable
//! collision probability `p(s, w)` and its QALSH counterpart. This
//! experiment plants point pairs at controlled distances, hashes them
//! under many independently drawn functions, and compares empirical
//! collision rates against the closed forms — including at the virtual
//! rehashing levels `R ∈ {1, 2, 4}` where the effective width is `w·R`.

use c2lsh::{C2lshConfig, HashFamily};
use cc_bench::table::{f3, Table};
use cc_math::pstable::collision_probability;
use qalsh::qalsh_collision_probability;

fn main() {
    let d = 32;
    let m = 20_000; // i.i.d. trials
    let w = 2.184;
    let cfg = C2lshConfig::builder().bucket_width(w).seed(1234).build();
    let family = HashFamily::generate(m, d, &cfg);

    let mut t = Table::new(
        format!("V1: empirical vs theoretical collision probability (m = {m} trials)"),
        &["family", "s", "R", "empirical", "theory", "abs_err"],
    );

    let o = vec![0.0f32; d];
    for s in [0.5f64, 1.0, 1.5, 2.0, 3.0, 5.0] {
        let mut q = vec![0.0f32; d];
        q[0] = s as f32;
        for r in [1i64, 2, 4] {
            let coll = family
                .iter()
                .filter(|h| h.bucket(&o).div_euclid(r) == h.bucket(&q).div_euclid(r))
                .count();
            let emp = coll as f64 / m as f64;
            let theory = collision_probability(s, w * r as f64);
            t.row(vec![
                "p-stable".into(),
                f3(s),
                r.to_string(),
                f3(emp),
                f3(theory),
                f3((emp - theory).abs()),
            ]);
        }
    }

    // QALSH family: |a·(o−q)| ≤ w/2 with a ~ N(0,1)^d.
    let wq = qalsh::params::optimal_width(2);
    let mut rng_proj = Vec::with_capacity(m);
    {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(99);
        let mut normal = cc_vector::gen::NormalSampler::new();
        for _ in 0..m {
            let a: Vec<f32> = (0..d).map(|_| normal.sample(&mut rng) as f32).collect();
            rng_proj.push(a);
        }
    }
    for s in [0.5f64, 1.0, 2.0, 4.0] {
        let mut q = vec![0.0f32; d];
        q[0] = s as f32;
        let coll = rng_proj
            .iter()
            .filter(|a| {
                let proj = cc_vector::dist::dot(a, &q) - cc_vector::dist::dot(a, &o);
                proj.abs() <= wq / 2.0
            })
            .count();
        let emp = coll as f64 / m as f64;
        let theory = qalsh_collision_probability(s, wq);
        t.row(vec![
            "query-aware".into(),
            f3(s),
            "1".into(),
            f3(emp),
            f3(theory),
            f3((emp - theory).abs()),
        ]);
    }
    t.print();
    t.save_csv("v1_collision_prob");
}

//! **T2 — derived parameters** (the paper's parameter table).
//!
//! For every dataset profile and `c ∈ {2, 3}`, prints the collision
//! probabilities `p1`, `p2`, the optimal threshold percentage `α*`, the
//! number of hash functions `m` and the collision threshold `l` that the
//! Hoeffding machinery derives, plus the corresponding QALSH parameters
//! for comparison.

use c2lsh::{C2lshConfig, FullParams};
use cc_bench::table::{f3, Table};
use cc_vector::synth::Profile;

fn main() {
    let scale = cc_bench::scale();
    let mut t = Table::new(
        format!("T2: derived parameters (scale {scale}, delta = 1/e, beta = 100/n)"),
        &["dataset", "n", "c", "method", "w", "p1", "p2", "alpha*", "m", "l"],
    );
    for profile in Profile::paper_profiles() {
        let (n_full, _) = profile.shape();
        let n = ((n_full as f64 * scale) as usize).max(1);
        for c in [2u32, 3] {
            let cfg = C2lshConfig::builder().approximation_ratio(c).build();
            let p = FullParams::derive(n, &cfg);
            t.row(vec![
                profile.name().into(),
                n.to_string(),
                c.to_string(),
                "C2LSH".into(),
                f3(cfg.w),
                f3(p.derived.p1),
                f3(p.derived.p2),
                f3(p.derived.alpha),
                p.m.to_string(),
                p.l.to_string(),
            ]);
            let w_q = qalsh::params::optimal_width(c);
            let dq = qalsh::params::derive(c, w_q, cfg.delta, 100.0 / n as f64);
            t.row(vec![
                profile.name().into(),
                n.to_string(),
                c.to_string(),
                "QALSH".into(),
                f3(w_q),
                f3(dq.p1),
                f3(dq.p2),
                f3(dq.alpha),
                dq.m.to_string(),
                dq.l.to_string(),
            ]);
        }
    }
    t.print();
    t.save_csv("t2_params");
}

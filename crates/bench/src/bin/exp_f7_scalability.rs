//! **F7 — scalability in n**.
//!
//! Sweeps the dataset size at fixed dimensionality and reports C2LSH's
//! derived `m` (theory: `O(log n)`), index size (`O(n log n)`), query
//! I/O and verified candidates. Expected shape: verified candidates stay
//! near `k + βn·(β=100/n ⇒ ≈ k + 100)` — i.e. roughly flat — while the
//! linear scan's cost grows linearly.

use cc_bench::eval::evaluate;
use cc_bench::methods::defaults;
use cc_bench::prep::prepare_workload;
use cc_bench::table::{f1, f3, Table};
use cc_vector::synth::Profile;

fn main() {
    let nq = cc_bench::queries();
    let k = 10;
    let d = 32;
    let base = cc_bench::env_usize("CC_SCALE_BASE", 4_000);
    let mut t = Table::new(
        format!("F7: scalability in n (d = {d}, k = {k}, {nq} queries)"),
        &["n", "method", "m", "MiB", "recall", "ratio", "verified", "io", "ms"],
    );
    for mult in [1usize, 2, 4, 8, 16] {
        let n = base * mult;
        let profile = Profile::Custom { n, d };
        let w = prepare_workload(profile, 1.0, nq, k, 31);

        let c2 = defaults::c2lsh_disk(&w.data, 31);
        let row = evaluate(&c2, &w, k);
        t.row(vec![
            n.to_string(),
            "C2LSH(disk)".into(),
            c2.0.params().m.to_string(),
            f1(c2.0.size_bytes() as f64 / (1024.0 * 1024.0)),
            f3(row.recall),
            f3(row.ratio),
            f1(row.verified),
            f1(row.io_reads),
            f3(row.time_ms),
        ]);

        let lin = defaults::linear(&w.data);
        let row = evaluate(&lin, &w, k);
        t.row(vec![
            n.to_string(),
            "LinearScan".into(),
            "-".into(),
            "0.0".into(),
            f3(row.recall),
            f3(row.ratio),
            f1(row.verified),
            f1(row.io_reads),
            f3(row.time_ms),
        ]);
        eprintln!("[n = {n} done]");
    }
    t.print();
    t.save_csv("f7_scalability");
}

//! **F2 — I/O cost vs k** (the paper's efficiency figures; C2LSH and
//! LSB-forest are disk-based systems and the paper reports page reads).
//!
//! Uses the paged C2LSH backend (exact page accounting), QALSH's B+-tree
//! accounting, LSB-forest's page model, and the linear-scan full read as
//! the upper reference. Expected shape: C2LSH beats LSB-forest on most
//! datasets at equal or better ratio, and everything is far below the
//! linear scan.

use cc_bench::eval::evaluate;
use cc_bench::methods::{defaults, AnnIndex};
use cc_bench::prep::prepare_workload;
use cc_bench::table::{push_eval_row, Table, EVAL_HEADERS};
use cc_vector::synth::Profile;

fn main() {
    let scale = cc_bench::scale();
    let nq = cc_bench::queries();
    let ks = [1usize, 10, 20, 40, 60, 80, 100];
    let mut t =
        Table::new(format!("F2: page I/O vs k (scale {scale}, {nq} queries)"), &EVAL_HEADERS);
    for profile in Profile::paper_profiles() {
        let w = prepare_workload(profile, scale, nq, *ks.last().unwrap(), 13);
        let c2d = defaults::c2lsh_disk(&w.data, 13);
        let qa = defaults::qalsh(&w.data, 13);
        let lsb = defaults::lsb(&w.data, 13);
        let lin = defaults::linear(&w.data);
        let methods: [&dyn AnnIndex; 4] = [&c2d, &qa, &lsb, &lin];
        for &k in &ks {
            for m in methods {
                let row = evaluate(m, &w, k);
                push_eval_row(&mut t, profile.name(), &row);
            }
        }
        eprintln!("[{} done]", profile.name());
    }
    t.print();
    t.save_csv("f2_io_vs_k");
}

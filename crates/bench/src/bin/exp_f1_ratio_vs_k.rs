//! **F1 — overall ratio vs k** (the paper's quality figures).
//!
//! For every dataset and `k ∈ {1, 10, 20, 40, 60, 80, 100}`, reports the
//! overall ratio (and recall) of C2LSH, QALSH, E2LSH and LSB-forest.
//! Expected shape: all methods stay well below the `c = 2` bound; C2LSH
//! and QALSH track close to 1.0 and degrade more slowly with `k` than
//! the static-framework methods.

use cc_bench::eval::evaluate;
use cc_bench::methods::{defaults, AnnIndex};
use cc_bench::prep::prepare_workload;
use cc_bench::table::{push_eval_row, Table, EVAL_HEADERS};
use cc_vector::synth::Profile;

fn main() {
    let scale = cc_bench::scale();
    let nq = cc_bench::queries();
    let ks = [1usize, 10, 20, 40, 60, 80, 100];
    let mut t =
        Table::new(format!("F1: ratio & recall vs k (scale {scale}, {nq} queries)"), &EVAL_HEADERS);
    for profile in Profile::paper_profiles() {
        let w = prepare_workload(profile, scale, nq, *ks.last().unwrap(), 11);
        let c2 = defaults::c2lsh(&w.data, 11);
        let qa = defaults::qalsh(&w.data, 11);
        let e2 = defaults::e2lsh(&w.data, 11);
        let lsb = defaults::lsb(&w.data, 11);
        let mp = defaults::multiprobe(&w.data, 11);
        let methods: [&dyn AnnIndex; 5] = [&c2, &qa, &e2, &lsb, &mp];
        for &k in &ks {
            for m in methods {
                let row = evaluate(m, &w, k);
                push_eval_row(&mut t, profile.name(), &row);
            }
        }
        eprintln!("[{} done]", profile.name());
    }
    t.print();
    t.save_csv("f1_ratio_vs_k");
}

//! **F3 — wall-clock query time vs k** (memory mode).
//!
//! Complements F2 for in-memory deployments: mean per-query milliseconds
//! of every method, including the exact linear scan as the budget every
//! approximate method must undercut.

use cc_bench::eval::evaluate;
use cc_bench::methods::{defaults, AnnIndex};
use cc_bench::prep::prepare_workload;
use cc_bench::table::{push_eval_row, Table, EVAL_HEADERS};
use cc_vector::synth::Profile;

fn main() {
    let scale = cc_bench::scale();
    let nq = cc_bench::queries();
    let ks = [1usize, 10, 50, 100];
    let mut t = Table::new(
        format!("F3: query time vs k, memory mode (scale {scale}, {nq} queries)"),
        &EVAL_HEADERS,
    );
    for profile in Profile::paper_profiles() {
        let w = prepare_workload(profile, scale, nq, *ks.last().unwrap(), 17);
        let c2 = defaults::c2lsh(&w.data, 17);
        let qa = defaults::qalsh(&w.data, 17);
        let e2 = defaults::e2lsh(&w.data, 17);
        let lsb = defaults::lsb(&w.data, 17);
        let lin = defaults::linear(&w.data);
        let methods: [&dyn AnnIndex; 5] = [&c2, &qa, &e2, &lsb, &lin];
        for &k in &ks {
            for m in methods {
                let row = evaluate(m, &w, k);
                push_eval_row(&mut t, profile.name(), &row);
            }
        }
        eprintln!("[{} done]", profile.name());
    }
    t.print();
    t.save_csv("f3_time_vs_k");
}

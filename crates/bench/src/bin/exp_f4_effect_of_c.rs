//! **F4 — effect of the approximation ratio c** (the paper's c = 2 vs
//! c = 3 study).
//!
//! A larger `c` widens the `p1/p2` gap, shrinking `m` (and the index) and
//! the query cost, at the price of a weaker quality guarantee. The table
//! reports `m`, index size, I/O, ratio and recall for `c ∈ {2, 3}` on
//! every dataset (disk backend, exact I/O accounting).

use c2lsh::{C2lshConfig, DiskIndex};
use cc_bench::eval::evaluate;
use cc_bench::methods::{AnnIndex, C2lshDisk};
use cc_bench::prep::prepare_workload;
use cc_bench::table::{f1, f3, Table};
use cc_vector::synth::Profile;

fn main() {
    let scale = cc_bench::scale();
    let nq = cc_bench::queries();
    let k = 10;
    let mut t = Table::new(
        format!("F4: effect of c (k = {k}, scale {scale}, {nq} queries)"),
        &["dataset", "c", "m", "l", "MiB", "recall", "ratio", "io", "verified"],
    );
    for profile in Profile::paper_profiles() {
        let w = prepare_workload(profile, scale, nq, k, 19);
        for c in [2u32, 3] {
            let cfg = C2lshConfig::builder()
                .approximation_ratio(c)
                .bucket_width(if c == 2 { 2.184 } else { 2.719 })
                .seed(19)
                .build();
            let idx = C2lshDisk(DiskIndex::build(&w.data, &cfg));
            let row = evaluate(&idx, &w, k);
            let p = idx.0.params();
            t.row(vec![
                profile.name().into(),
                c.to_string(),
                p.m.to_string(),
                p.l.to_string(),
                f1(idx.size_bytes() as f64 / (1024.0 * 1024.0)),
                f3(row.recall),
                f3(row.ratio),
                f1(row.io_reads),
                f1(row.verified),
            ]);
        }
        eprintln!("[{} done]", profile.name());
    }
    t.print();
    t.save_csv("f4_effect_of_c");
}

//! **F6 — recall / query-time frontier** (grid search per method).
//!
//! Mirrors the paper's protocol of reporting each method at its best
//! parameters per recall level: sweeps a small parameter grid for every
//! method and prints all (recall, time) points; the frontier is the
//! lower envelope per method.

use c2lsh::{Beta, C2lshConfig, C2lshIndex};
use cc_baselines::e2lsh::{E2lsh, E2lshConfig};
use cc_baselines::lsb::{LsbConfig, LsbForest};
use cc_baselines::multiprobe::{MultiProbeConfig, MultiProbeLsh};
use cc_bench::eval::evaluate;
use cc_bench::methods::{C2lshMem, E2lshIdx, LsbIdx, MultiProbeIdx, QalshIdx};
use cc_bench::prep::prepare_workload;
use cc_bench::table::{f3, Table};
use cc_vector::synth::Profile;
use qalsh::{Qalsh, QalshConfig};

fn main() {
    let scale = cc_bench::scale();
    let nq = cc_bench::queries();
    let k = 10;
    let mut t = Table::new(
        format!("F6: recall/time frontier (k = {k}, scale {scale}, {nq} queries)"),
        &["dataset", "method", "params", "recall", "ratio", "ms"],
    );
    let profile = Profile::Mnist;
    let w = prepare_workload(profile, scale, nq, k, 29);

    // C2LSH: sweep the verification budget via beta.
    for beta in [25u64, 50, 100, 200, 400, 800] {
        let cfg =
            C2lshConfig::builder().bucket_width(2.184).beta(Beta::Count(beta)).seed(29).build();
        let idx = C2lshMem(C2lshIndex::build(&w.data, &cfg));
        let r = evaluate(&idx, &w, k);
        t.row(vec![
            profile.name().into(),
            "C2LSH".into(),
            format!("beta={beta}"),
            f3(r.recall),
            f3(r.ratio),
            f3(r.time_ms),
        ]);
    }
    // QALSH: same sweep.
    for beta in [25u64, 50, 100, 200, 400] {
        let idx = QalshIdx(Qalsh::build(
            &w.data,
            QalshConfig { beta_count: beta, seed: 29, ..Default::default() },
        ));
        let r = evaluate(&idx, &w, k);
        t.row(vec![
            profile.name().into(),
            "QALSH".into(),
            format!("beta={beta}"),
            f3(r.recall),
            f3(r.ratio),
            f3(r.time_ms),
        ]);
    }
    // E2LSH: sweep K and L.
    for (kf, l) in [(10, 32), (8, 32), (8, 64), (6, 64), (6, 128), (4, 128)] {
        let idx = E2lshIdx(E2lsh::build(
            &w.data,
            E2lshConfig { k_funcs: kf, l_tables: l, w: 2.184, seed: 29 },
        ));
        let r = evaluate(&idx, &w, k);
        t.row(vec![
            profile.name().into(),
            "E2LSH".into(),
            format!("K={kf},L={l}"),
            f3(r.recall),
            f3(r.ratio),
            f3(r.time_ms),
        ]);
    }
    // LSB-forest: sweep trees and budget.
    for (l, budget) in [(8, 100), (16, 100), (16, 200), (24, 200), (24, 400), (32, 800)] {
        let idx = LsbIdx(LsbForest::build(
            &w.data,
            LsbConfig {
                k_funcs: 8,
                l_trees: l,
                u_bits: 16,
                w: 1.5,
                c: 2,
                budget,
                quality_stop: false,
                seed: 29,
            },
        ));
        let r = evaluate(&idx, &w, k);
        t.row(vec![
            profile.name().into(),
            "LSB-forest".into(),
            format!("L={l},budget={budget}"),
            f3(r.recall),
            f3(r.ratio),
            f3(r.time_ms),
        ]);
    }
    // Multi-Probe LSH: few tables, sweep the probe count.
    for probes in [0usize, 8, 16, 32, 64, 128] {
        let idx = MultiProbeIdx(MultiProbeLsh::build(
            &w.data,
            MultiProbeConfig { k_funcs: 8, l_tables: 8, w: 2.184, probes, seed: 29 },
        ));
        let r = evaluate(&idx, &w, k);
        t.row(vec![
            profile.name().into(),
            "MultiProbe".into(),
            format!("L=8,probes={probes}"),
            f3(r.recall),
            f3(r.ratio),
            f3(r.time_ms),
        ]);
    }
    t.print();
    t.save_csv("f6_recall_frontier");
}

//! **T3 — index size and construction time** (the paper's index-size
//! comparison, the headline of C2LSH's space advantage).
//!
//! Builds every method on every dataset and reports size (MiB) and build
//! time. The paper's shape: LSB-forest ≫ rigorous-LSH ≫ E2LSH > C2LSH,
//! with C2LSH one to two orders of magnitude below LSB-forest.

use cc_baselines::e2lsh::E2lshConfig;
use cc_baselines::rigorous::{RigorousConfig, RigorousLsh};
use cc_bench::methods::{defaults, AnnIndex, RigorousIdx};
use cc_bench::prep::prepare_workload;
use cc_bench::table::{f1, f3, Table};
use cc_vector::synth::Profile;
use std::time::Instant;

fn main() {
    let scale = cc_bench::scale();
    let mut t = Table::new(
        format!("T3: index size & build time (scale {scale})"),
        &["dataset", "n", "method", "MiB", "build_s"],
    );
    for profile in Profile::paper_profiles() {
        let w = prepare_workload(profile, scale, 1, 1, 7);
        let n = w.n();

        let t0 = Instant::now();
        let c2 = defaults::c2lsh(&w.data, 7);
        push(&mut t, profile.name(), n, &c2, t0);

        let t0 = Instant::now();
        let qa = defaults::qalsh(&w.data, 7);
        push(&mut t, profile.name(), n, &qa, t0);

        let t0 = Instant::now();
        let e2 = defaults::e2lsh(&w.data, 7);
        push(&mut t, profile.name(), n, &e2, t0);

        let t0 = Instant::now();
        let lsb = defaults::lsb(&w.data, 7);
        push(&mut t, profile.name(), n, &lsb, t0);

        let t0 = Instant::now();
        let mp = defaults::multiprobe(&w.data, 7);
        push(&mut t, profile.name(), n, &mp, t0);

        let t0 = Instant::now();
        let rig = RigorousIdx(RigorousLsh::build(
            &w.data,
            RigorousConfig {
                base: E2lshConfig { k_funcs: 8, l_tables: 64, w: 2.184, seed: 7 },
                c: 2,
                levels: 10,
            },
        ));
        push(&mut t, profile.name(), n, &rig, t0);
    }
    t.print();
    t.save_csv("t3_index_size");
}

fn push(t: &mut Table, dataset: &str, n: usize, idx: &dyn AnnIndex, t0: Instant) {
    t.row(vec![
        dataset.to_string(),
        n.to_string(),
        idx.name().to_string(),
        f1(idx.size_bytes() as f64 / (1024.0 * 1024.0)),
        f3(t0.elapsed().as_secs_f64()),
    ]);
}

//! **F9 — buffer-pool sensitivity** (beyond the paper: how much of
//! C2LSH's logical I/O a small page cache absorbs).
//!
//! The disk experiments (F2) report *logical* page reads, matching the
//! paper's cold-cache protocol. Real deployments keep a buffer pool;
//! this experiment records the exact page-access trace of a C2LSH query
//! workload and replays it through LRU pools of increasing capacity,
//! reporting the physical-read rate (miss rate).

use c2lsh::{C2lshConfig, DiskIndex};
use cc_bench::prep::prepare_workload;
use cc_bench::table::{f1, f3, Table};
use cc_storage::buffer::BufferPool;
use cc_storage::pagefile::PageFile;
use cc_vector::synth::Profile;

fn main() {
    let scale = cc_bench::scale();
    let nq = cc_bench::queries();
    let k = 10;
    let mut t = Table::new(
        format!("F9: LRU buffer-pool hit rates on the C2LSH access trace (k = {k})"),
        &[
            "dataset",
            "index_pages",
            "trace_len",
            "pool_pages",
            "pool_frac",
            "hit_rate",
            "physical_reads",
        ],
    );
    for profile in [Profile::Mnist, Profile::Color] {
        let w = prepare_workload(profile, scale, nq, k, 59);
        let cfg = C2lshConfig::builder().bucket_width(2.184).seed(59).build();
        let idx = DiskIndex::build(&w.data, &cfg);

        // Record the page trace of the whole query workload.
        idx.page_file().start_trace();
        for q in w.queries.iter() {
            let _ = idx.query(q, k);
        }
        let trace = idx.page_file().take_trace();
        let total_pages = idx.size_pages();

        for frac in [0.01f64, 0.05, 0.1, 0.25, 0.5] {
            let capacity = ((total_pages as f64 * frac) as usize).max(1);
            // Replay through a fresh file of the same shape (contents do
            // not matter for cache behavior, only the id sequence).
            let mut file = PageFile::new();
            for _ in 0..total_pages {
                file.alloc();
            }
            let pool = BufferPool::new(&file, capacity);
            for &pid in &trace {
                pool.get(pid);
            }
            let s = pool.stats();
            t.row(vec![
                profile.name().into(),
                total_pages.to_string(),
                trace.len().to_string(),
                capacity.to_string(),
                f3(frac),
                f3(s.hit_ratio()),
                f1(s.misses as f64 / nq as f64),
            ]);
        }
        eprintln!("[{} done]", profile.name());
    }
    t.print();
    t.save_csv("f9_buffer_pool");
}

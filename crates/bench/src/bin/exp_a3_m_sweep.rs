//! **A3 — ablation: is the Hoeffding-derived m actually needed?**
//!
//! Overrides `m` to fractions/multiples of the derived value (threshold
//! percentage held at α*) and measures quality. Expected shape: recall
//! climbs steeply up to roughly the derived `m` and flattens after — the
//! theory's `m` sits at the knee, which is the point of deriving it
//! instead of hand-tuning.

use c2lsh::{C2lshConfig, C2lshIndex, FullParams};
use cc_bench::eval::evaluate;
use cc_bench::methods::C2lshMem;
use cc_bench::prep::prepare_workload;
use cc_bench::table::{f1, f3, Table};
use cc_vector::synth::Profile;

fn main() {
    let scale = cc_bench::scale();
    let nq = cc_bench::queries();
    let k = 10;
    let mut t = Table::new(
        format!("A3: sweep of m around the derived optimum (k = {k}, scale {scale})"),
        &["dataset", "m/m*", "m", "l", "recall", "ratio", "verified", "MiB"],
    );
    for profile in [Profile::Mnist, Profile::Color] {
        let w = prepare_workload(profile, scale, nq, k, 53);
        let derived = FullParams::derive(w.n(), &C2lshConfig::default());
        for frac in [0.25f64, 0.5, 0.75, 1.0, 1.5, 2.0] {
            let m = ((derived.m as f64 * frac).round() as usize).max(2);
            let cfg = C2lshConfig::builder().m_override(m).seed(53).build();
            let idx = C2lshMem(C2lshIndex::build(&w.data, &cfg));
            let row = evaluate(&idx, &w, k);
            t.row(vec![
                profile.name().into(),
                f3(frac),
                idx.0.params().m.to_string(),
                idx.0.params().l.to_string(),
                f3(row.recall),
                f3(row.ratio),
                f1(row.verified),
                f1(idx.0.size_bytes() as f64 / (1024.0 * 1024.0)),
            ]);
        }
        eprintln!("[{} done]", profile.name());
    }
    t.print();
    t.save_csv("a3_m_sweep");
}

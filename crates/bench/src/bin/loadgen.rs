//! **loadgen — closed-loop load generator for `cc-service`**.
//!
//! Drives a running (or self-hosted) query server with `CC_CLIENTS`
//! concurrent closed-loop connections — each sends a request, waits for
//! the answer, repeats — for `CC_SECONDS`, then reports throughput,
//! latency percentiles (p50/p95/p99) split by reads and writes, the
//! overload-rejection count, and the server's own coalescing evidence
//! (batches, largest batch) pulled from the stats frame.
//!
//! With `CC_MODE=dynamic` the self-hosted server is a WAL-backed
//! [`MutableIndex`] and `CC_WRITE_PCT` percent of each client's
//! operations become inserts/deletes. Every acknowledged mutation is
//! tracked, and after the drain the WAL directory is reopened
//! cold — exactly what a crash recovery would do — and checked against
//! the acknowledged ground truth: every acked insert answerable at
//! distance zero, every acked delete gone.
//!
//! ```text
//! # self-hosted read-only: 4-shard engine on an ephemeral port
//! cargo run -p cc-bench --release --bin loadgen
//!
//! # self-hosted mixed read/write with durability verification
//! CC_MODE=dynamic CC_WRITE_PCT=10 cargo run -p cc-bench --release --bin loadgen
//!
//! # against an external server (see `cargo run -p cc-service`)
//! CC_ADDR=127.0.0.1:7878 cargo run -p cc-bench --release --bin loadgen
//! ```
//!
//! Environment overrides: `CC_ADDR` (default: self-host), `CC_CLIENTS`
//! (32), `CC_SECONDS` (5), `CC_K` (10), `CC_N` (20000, self-host
//! only), `CC_DIM` (16, self-host only), `CC_MODE`
//! (`sharded`|`dynamic`, self-host only), `CC_WRITE_PCT` (0; needs a
//! mutable server), `CC_FILTER_PCT` (0; that share of reads carries a
//! label predicate — self-hosted servers seed labels `i % 3`, and the
//! probe predicate `label == 0` also matches every point of an
//! external server without metadata), `CC_WAL_DIR` (scratch directory
//! by default), `CC_METRICS_ADDR` (scrape the server's `/metrics`
//! endpoint after the run and print its latency quantiles next to the
//! client-measured ones — the external server must run with
//! `--metrics-addr`).

use c2lsh::{
    C2lshConfig, MutableIndex, MutationOp, PointMeta, Predicate, ShardedData, ShardedEngine,
};
use cc_bench::env_usize;
use cc_service::{Client, QueryRequest, SearchOutcome, ServiceConfig, StatsSnapshot};
use cc_vector::gen::{generate, Distribution};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// One client's acknowledged write, kept for post-run verification.
struct AckedWrite {
    oid: u32,
    vector: Vec<f32>,
    deleted: bool,
}

#[derive(Default)]
struct ClientReport {
    read_latencies_ns: Vec<u64>,
    filtered_latencies_ns: Vec<u64>,
    write_latencies_ns: Vec<u64>,
    overloaded: u64,
    acked: Vec<AckedWrite>,
}

fn percentile(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return f64::NAN;
    }
    let rank = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[rank] as f64 / 1e6
}

/// The closed loop of one connection: send, wait, repeat. Overload
/// rejections are counted and retried after a short backoff — the
/// client-side half of the admission-control contract. A `write_pct`
/// slice of operations mutate: inserts of vectors unique to this
/// client, and deletes of the client's own earlier inserts (so every
/// delete targets a live object and clients never interfere).
fn run_client(
    addr: std::net::SocketAddr,
    queries: &cc_vector::dataset::Dataset,
    k: u32,
    write_pct: usize,
    filter_pct: usize,
    stop: &AtomicBool,
    t: usize,
) -> ClientReport {
    let dim = queries.dim();
    let mut client = Client::connect(addr).expect("connect");
    let mut report = ClientReport::default();
    let mut qi = t; // stagger the starting query per client
    let mut inserted = 0usize;
    let mut next_victim = 0usize; // index into report.acked, oldest first
    while !stop.load(Ordering::Relaxed) {
        qi += 1;
        // Cheap multiplicative hash → deterministic op mix per client.
        let roll = (qi.wrapping_mul(2654435761)) % 100;
        if roll < write_pct {
            let sent = Instant::now();
            // Alternate: odd writes delete the oldest own live object
            // (when one exists), even writes insert.
            if roll % 2 == 1 && next_victim < report.acked.len() {
                let victim = report.acked[next_victim].oid;
                let (found, _seq) = client.delete(victim).expect("delete");
                assert!(found, "client {t} deleting its own live oid {victim}");
                report.acked[next_victim].deleted = true;
                next_victim += 1;
            } else {
                // Unique per (client, counter) and far from the seeded
                // clusters; exact in f32 well past any realistic rate.
                let val = (t * 100_000 + inserted) as f32 + 100_000.0;
                let vector = vec![val; dim];
                let (oid, _seq) = client.insert(&vector).expect("insert");
                report.acked.push(AckedWrite { oid, vector, deleted: false });
                inserted += 1;
            }
            report.write_latencies_ns.push(sent.elapsed().as_nanos() as u64);
            continue;
        }
        let q = queries.get(qi % queries.len());
        // A second independent roll decides whether this read carries a
        // predicate. `label == 0` is selective (one label in three) on
        // the self-hosted seeding and still matches every point of a
        // metadata-free external server, so results stay non-empty.
        let filtered = (qi.wrapping_mul(2246822519)) % 100 < filter_pct;
        let mut req = QueryRequest::new(q.to_vec()).k(k);
        if filtered {
            req = req.filter(Predicate::label(0));
        }
        let sent = Instant::now();
        match client.search(&req).expect("query") {
            SearchOutcome::Result(r) => {
                assert!(!r.neighbors.is_empty(), "server returned an empty result set");
                let lat = sent.elapsed().as_nanos() as u64;
                if filtered {
                    report.filtered_latencies_ns.push(lat);
                } else {
                    report.read_latencies_ns.push(lat);
                }
            }
            SearchOutcome::Overloaded => {
                report.overloaded += 1;
                std::thread::sleep(Duration::from_micros(200));
            }
            SearchOutcome::DeadlineExceeded => {
                panic!("deadline exceeded on a query that set no deadline")
            }
            SearchOutcome::Stale => {
                panic!("stale rejection on a query that pinned no min_seq")
            }
        }
    }
    report
}

fn drive(
    addr: std::net::SocketAddr,
    queries: &cc_vector::dataset::Dataset,
    write_pct: usize,
    filter_pct: usize,
) -> Vec<ClientReport> {
    let clients = env_usize("CC_CLIENTS", 32);
    let seconds = env_usize("CC_SECONDS", 5);
    let k = env_usize("CC_K", 10) as u32;

    let mut probe = Client::connect(addr).expect("connect");
    probe.ping().expect("ping");
    let before = probe.stats().expect("stats");

    eprintln!(
        "driving {clients} closed-loop clients for {seconds}s \
         (k = {k}, writes {write_pct}%, filtered reads {filter_pct}%)…"
    );
    let stop = AtomicBool::new(false);
    let stop = &stop;
    let reports: Vec<ClientReport> = crossbeam::scope(move |s| {
        let handles: Vec<_> = (0..clients)
            .map(|t| s.spawn(move |_| run_client(addr, queries, k, write_pct, filter_pct, stop, t)))
            .collect();
        std::thread::sleep(Duration::from_secs(seconds as u64));
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .unwrap();

    let after = probe.stats().expect("stats");
    let delta = |get: fn(&StatsSnapshot) -> u64| get(&after).saturating_sub(get(&before));

    let mut reads: Vec<u64> =
        reports.iter().flat_map(|r| r.read_latencies_ns.iter().copied()).collect();
    reads.sort_unstable();
    let mut filtered: Vec<u64> =
        reports.iter().flat_map(|r| r.filtered_latencies_ns.iter().copied()).collect();
    filtered.sort_unstable();
    let mut writes: Vec<u64> =
        reports.iter().flat_map(|r| r.write_latencies_ns.iter().copied()).collect();
    writes.sort_unstable();
    let answered = (reads.len() + filtered.len()) as u64;
    let overloaded: u64 = reports.iter().map(|r| r.overloaded).sum();
    let ops = answered + writes.len() as u64;

    println!(
        "answered    {answered} queries ({} filtered) + {} writes ({overloaded} overload \
         rejections)",
        filtered.len(),
        writes.len()
    );
    println!("throughput  {:.0} ops/s", ops as f64 / seconds as f64);
    println!(
        "read  lat.  p50 {:.3} ms   p95 {:.3} ms   p99 {:.3} ms",
        percentile(&reads, 0.50),
        percentile(&reads, 0.95),
        percentile(&reads, 0.99),
    );
    if !filtered.is_empty() {
        println!(
            "filt. lat.  p50 {:.3} ms   p95 {:.3} ms   p99 {:.3} ms \
             ({} candidates rejected by predicates, whole server lifetime)",
            percentile(&filtered, 0.50),
            percentile(&filtered, 0.95),
            percentile(&filtered, 0.99),
            delta(|s| s.engine.filtered),
        );
    }
    if !writes.is_empty() {
        println!(
            "write lat.  p50 {:.3} ms   p95 {:.3} ms   p99 {:.3} ms (durable: acked after fsync)",
            percentile(&writes, 0.50),
            percentile(&writes, 0.95),
            percentile(&writes, 0.99),
        );
        println!(
            "write path  {} inserts, {} deletes, {} mutation flushes",
            delta(|s| s.inserts),
            delta(|s| s.deletes),
            delta(|s| s.mutation_batches),
        );
    }
    let batches = delta(|s| s.batches);
    let mean_batch = if batches > 0 { delta(|s| s.queries) as f64 / batches as f64 } else { 0.0 };
    println!(
        "coalescing  {batches} engine flushes, mean batch {mean_batch:.1}, largest batch {} \
         (whole server lifetime)",
        after.max_batch,
    );
    if answered > 0 && after.max_batch < 2 {
        eprintln!("warning: no request coalescing observed — is the server idle-tuned?");
    }
    // A server running with observability on reports its own latency
    // quantiles in the schema-2 stats frame — print them next to the
    // client-side measurement (server time excludes the network, so it
    // must come in at or under what the clients saw).
    if let Some(latency) = &after.latency {
        println!(
            "server lat. p50 {:.3} ms   p99 {:.3} ms (reported by the server, network excluded)",
            latency.query_p50_nanos as f64 / 1e6,
            latency.query_p99_nanos as f64 / 1e6,
        );
    }
    scrape_metrics(&reads);
    reports
}

/// With `CC_METRICS_ADDR` set, scrape the server's Prometheus endpoint
/// and print its end-to-end quantiles next to the client-measured
/// ones — the consistency check the metrics exist for.
fn scrape_metrics(client_reads_sorted_ns: &[u64]) {
    let Ok(addr) = std::env::var("CC_METRICS_ADDR") else { return };
    let addr: std::net::SocketAddr = addr.parse().expect("CC_METRICS_ADDR must be HOST:PORT");
    let text = match cc_obs::http_get(addr, "/metrics") {
        Ok(text) => text,
        Err(e) => {
            eprintln!("warning: scraping {addr}/metrics failed: {e}");
            return;
        }
    };
    let series = |name: &str| -> Option<f64> {
        text.lines()
            .find(|l| l.strip_prefix(name).map(|r| r.starts_with(' ')).unwrap_or(false))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
    };
    let (Some(p50), Some(p99)) = (
        series("cc_query_seconds{quantile=\"0.5\"}"),
        series("cc_query_seconds{quantile=\"0.99\"}"),
    ) else {
        eprintln!("warning: {addr}/metrics has no cc_query_seconds quantiles (obs disabled?)");
        return;
    };
    println!("scrape      cc_query_seconds p50 {:.3} ms   p99 {:.3} ms", p50 * 1e3, p99 * 1e3);
    if !client_reads_sorted_ns.is_empty() {
        let client_p50 = percentile(client_reads_sorted_ns, 0.50);
        // Server-side time excludes the network and the client stack,
        // so a server p50 far above the client p50 means the two views
        // disagree about what was measured.
        if p50 * 1e3 > client_p50 * 2.0 + 1.0 {
            eprintln!(
                "warning: server p50 {:.3} ms vs client p50 {client_p50:.3} ms — inconsistent",
                p50 * 1e3
            );
        }
    }
}

/// Reopen the WAL directory cold — the same code path crash recovery
/// takes — and check every acknowledged write against it.
fn verify_durability(
    dir: &std::path::Path,
    dim: usize,
    expected_n: usize,
    config: &C2lshConfig,
    reports: &[ClientReport],
) {
    let recovered = MutableIndex::open(dir, dim, expected_n, config).expect("reopen WAL dir");
    let mut verified = 0usize;
    for report in reports {
        for w in &report.acked {
            let slot = recovered.snapshot().0.slots().get(w.oid as usize).cloned().flatten();
            if w.deleted {
                assert!(slot.is_none(), "acked delete of oid {} did not survive reopen", w.oid);
            } else {
                assert_eq!(
                    slot.as_deref(),
                    Some(&w.vector[..]),
                    "acked insert of oid {} did not survive reopen",
                    w.oid
                );
                let (nn, _) = recovered.query(&w.vector, 1);
                assert_eq!((nn[0].id, nn[0].dist), (w.oid, 0.0), "oid {} unanswerable", w.oid);
            }
            verified += 1;
        }
    }
    println!("durability  verified {verified} acknowledged writes against a cold reopen ✓");
}

/// The label assignment the self-hosted servers seed: `i % 3`, coprime
/// to the generator's cluster count, so every cluster mixes all labels
/// and a label predicate is genuinely selective.
fn seed_meta(i: usize) -> PointMeta {
    PointMeta::new(1 << (i % 5), (i % 3) as u32)
}

fn main() {
    let write_pct = env_usize("CC_WRITE_PCT", 0).min(100);
    let filter_pct = env_usize("CC_FILTER_PCT", 0).min(100);
    if let Ok(addr) = std::env::var("CC_ADDR") {
        let addr = addr.parse().expect("CC_ADDR must be HOST:PORT");
        let queries = generate(
            Distribution::GaussianMixture { clusters: 10, spread: 0.02, scale: 10.0 },
            256,
            env_usize("CC_DIM", 16),
            99,
        );
        // External server: mutations are driven if requested, but
        // durability can only be verified when we own the WAL dir.
        drive(addr, &queries, write_pct, filter_pct);
        return;
    }

    let n = env_usize("CC_N", 20_000);
    let dim = env_usize("CC_DIM", 16);
    let mode = std::env::var("CC_MODE").unwrap_or_else(|_| "sharded".into());
    let data = generate(
        Distribution::GaussianMixture { clusters: 10, spread: 0.02, scale: 10.0 },
        n,
        dim,
        42,
    );
    let queries = generate(
        Distribution::GaussianMixture { clusters: 10, spread: 0.02, scale: 10.0 },
        256,
        dim,
        99,
    );
    let config = C2lshConfig::builder().bucket_width(1.0).seed(42).build();
    let service = ServiceConfig::default();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");

    match mode.as_str() {
        "sharded" => {
            assert_eq!(write_pct, 0, "CC_WRITE_PCT needs CC_MODE=dynamic (read-only engine)");
            eprintln!("self-hosting: building a 4-shard index over {n} vectors in R^{dim}…");
            let sharded = ShardedData::partition(&data, 4);
            let metas: Vec<PointMeta> = (0..n).map(seed_meta).collect();
            let engine = ShardedEngine::build(&sharded, &config).with_meta(metas);
            let (engine, service, queries) = (&engine, &service, &queries);
            crossbeam::scope(move |s| {
                let server =
                    s.spawn(move |_| cc_service::serve(engine, listener, service).unwrap());
                drive(addr, queries, 0, filter_pct);
                Client::connect(addr).expect("connect").shutdown().expect("shutdown");
                let stats = server.join().unwrap();
                eprintln!(
                    "server drained: {} queries in {} batches (largest {})",
                    stats.queries, stats.batches, stats.max_batch
                );
            })
            .unwrap();
        }
        "dynamic" => {
            let dir = std::env::var("CC_WAL_DIR")
                .map(std::path::PathBuf::from)
                .unwrap_or_else(|_| cc_storage::wal::scratch_dir("loadgen"));
            std::fs::create_dir_all(&dir).expect("create WAL dir");
            eprintln!(
                "self-hosting: WAL-backed dynamic index over {n} vectors in R^{dim} \
                 (log in {})…",
                dir.display()
            );
            let engine = MutableIndex::open(&dir, dim, n, &config).expect("open WAL dir");
            if engine.is_empty() && engine.last_seq() == 0 {
                let rows: Vec<MutationOp> = data
                    .iter()
                    .enumerate()
                    .map(|(i, v)| MutationOp::Insert { vector: v.to_vec(), meta: seed_meta(i) })
                    .collect();
                for chunk in rows.chunks(4096) {
                    engine.apply_batch(chunk).expect("bulk load");
                }
            }
            let reports = {
                let (engine, service, queries) = (&engine, &service, &queries);
                crossbeam::scope(move |s| {
                    let server =
                        s.spawn(move |_| cc_service::serve(engine, listener, service).unwrap());
                    let reports = drive(addr, queries, write_pct, filter_pct);
                    Client::connect(addr).expect("connect").shutdown().expect("shutdown");
                    let stats = server.join().unwrap();
                    eprintln!(
                        "server drained: {} queries, {} inserts, {} deletes in {} batches",
                        stats.queries, stats.inserts, stats.deletes, stats.batches
                    );
                    reports
                })
                .unwrap()
            };
            drop(engine); // release the WAL before the cold reopen
            verify_durability(&dir, dim, n, &config, &reports);
            if std::env::var("CC_WAL_DIR").is_err() {
                std::fs::remove_dir_all(&dir).ok();
            }
        }
        other => panic!("unknown CC_MODE {other:?} (expected sharded or dynamic)"),
    }
}

//! **loadgen — closed-loop load generator for `cc-service`**.
//!
//! Drives a running (or self-hosted) query server with `CC_CLIENTS`
//! concurrent closed-loop connections — each sends a query, waits for
//! the answer, repeats — for `CC_SECONDS`, then reports throughput,
//! latency percentiles (p50/p95/p99), the overload-rejection count,
//! and the server's own coalescing evidence (batches, largest batch)
//! pulled from the stats frame.
//!
//! ```text
//! # self-hosted: spins up an in-process server on an ephemeral port
//! cargo run -p cc-bench --release --bin loadgen
//!
//! # against an external server (see `cargo run -p cc-service`)
//! CC_ADDR=127.0.0.1:7878 cargo run -p cc-bench --release --bin loadgen
//! ```
//!
//! Environment overrides: `CC_ADDR` (default: self-host), `CC_CLIENTS`
//! (32), `CC_SECONDS` (5), `CC_K` (10), `CC_N` (20000, self-host
//! only), `CC_DIM` (16, self-host only).

use c2lsh::{C2lshConfig, ShardedData, ShardedEngine};
use cc_bench::env_usize;
use cc_service::json::find_u64;
use cc_service::{Client, Response, ServiceConfig};
use cc_vector::gen::{generate, Distribution};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

struct ClientReport {
    latencies_ns: Vec<u64>,
    overloaded: u64,
}

fn percentile(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return f64::NAN;
    }
    let rank = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[rank] as f64 / 1e6
}

/// The closed loop of one connection: query, wait, repeat. Overload
/// rejections are counted and retried after a short backoff — the
/// client-side half of the admission-control contract.
fn run_client(
    addr: std::net::SocketAddr,
    queries: &cc_vector::dataset::Dataset,
    k: u32,
    stop: &AtomicBool,
    t: usize,
) -> ClientReport {
    let mut client = Client::connect(addr).expect("connect");
    let mut report = ClientReport { latencies_ns: Vec::new(), overloaded: 0 };
    let mut qi = t; // stagger the starting query per client
    while !stop.load(Ordering::Relaxed) {
        let q = queries.get(qi % queries.len());
        qi += 1;
        let sent = Instant::now();
        match client.query(q, k, 0).expect("query") {
            Response::TopK(nn) => {
                assert!(!nn.is_empty(), "server returned an empty result set");
                report.latencies_ns.push(sent.elapsed().as_nanos() as u64);
            }
            Response::Overloaded => {
                report.overloaded += 1;
                std::thread::sleep(Duration::from_micros(200));
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    report
}

fn drive(addr: std::net::SocketAddr, queries: &cc_vector::dataset::Dataset) {
    let clients = env_usize("CC_CLIENTS", 32);
    let seconds = env_usize("CC_SECONDS", 5);
    let k = env_usize("CC_K", 10) as u32;

    let mut probe = Client::connect(addr).expect("connect");
    probe.ping().expect("ping");
    let before = probe.stats_json().expect("stats");

    eprintln!("driving {clients} closed-loop clients for {seconds}s (k = {k})…");
    let stop = AtomicBool::new(false);
    let stop = &stop;
    let reports: Vec<ClientReport> = crossbeam::scope(move |s| {
        let handles: Vec<_> =
            (0..clients).map(|t| s.spawn(move |_| run_client(addr, queries, k, stop, t))).collect();
        std::thread::sleep(Duration::from_secs(seconds as u64));
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .unwrap();

    let after = probe.stats_json().expect("stats");
    let delta = |key: &str| {
        find_u64(&after, key).unwrap_or(0).saturating_sub(find_u64(&before, key).unwrap_or(0))
    };

    let mut latencies: Vec<u64> =
        reports.iter().flat_map(|r| r.latencies_ns.iter().copied()).collect();
    latencies.sort_unstable();
    let answered = latencies.len() as u64;
    let overloaded: u64 = reports.iter().map(|r| r.overloaded).sum();
    let qps = answered as f64 / seconds as f64;

    println!("answered    {answered} queries ({overloaded} overload rejections)");
    println!("throughput  {qps:.0} qps");
    println!(
        "latency     p50 {:.3} ms   p95 {:.3} ms   p99 {:.3} ms",
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.95),
        percentile(&latencies, 0.99),
    );
    let batches = delta("batches");
    let mean_batch = if batches > 0 { delta("queries") as f64 / batches as f64 } else { 0.0 };
    println!(
        "coalescing  {batches} engine flushes, mean batch {mean_batch:.1}, largest batch {} \
         (whole server lifetime)",
        find_u64(&after, "max_batch").unwrap_or(0),
    );
    if answered > 0 && find_u64(&after, "max_batch").unwrap_or(0) < 2 {
        eprintln!("warning: no request coalescing observed — is the server idle-tuned?");
    }
}

fn main() {
    if let Ok(addr) = std::env::var("CC_ADDR") {
        let addr = addr.parse().expect("CC_ADDR must be HOST:PORT");
        let queries = generate(
            Distribution::GaussianMixture { clusters: 10, spread: 0.02, scale: 10.0 },
            256,
            env_usize("CC_DIM", 16),
            99,
        );
        drive(addr, &queries);
        return;
    }

    // Self-hosted mode: build a 4-shard engine in-process, serve it on
    // an ephemeral loopback port, drive it, then shut it down.
    let n = env_usize("CC_N", 20_000);
    let dim = env_usize("CC_DIM", 16);
    eprintln!("self-hosting: building a 4-shard index over {n} vectors in R^{dim}…");
    let data = generate(
        Distribution::GaussianMixture { clusters: 10, spread: 0.02, scale: 10.0 },
        n,
        dim,
        42,
    );
    let queries = generate(
        Distribution::GaussianMixture { clusters: 10, spread: 0.02, scale: 10.0 },
        256,
        dim,
        99,
    );
    let config = C2lshConfig::builder().bucket_width(1.0).seed(42).build();
    let sharded = ShardedData::partition(&data, 4);
    let engine = ShardedEngine::build(&sharded, &config);
    let service = ServiceConfig::default();

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let (engine, service, queries) = (&engine, &service, &queries);
    crossbeam::scope(move |s| {
        let server = s.spawn(move |_| cc_service::serve(engine, listener, service).unwrap());
        drive(addr, queries);
        Client::connect(addr).expect("connect").shutdown().expect("shutdown");
        let stats = server.join().unwrap();
        eprintln!(
            "server drained: {} queries in {} batches (largest {})",
            stats.queries, stats.batches, stats.max_batch
        );
    })
    .unwrap();
}

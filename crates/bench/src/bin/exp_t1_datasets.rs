//! **T1 — dataset statistics** (the paper's dataset table).
//!
//! Prints the four evaluation profiles at the configured scale plus the
//! paper-scale shapes they mirror. Run with `CC_SCALE=1` to reproduce the
//! full sizes.

use cc_bench::prep::{mean_nn_distance, prepare_workload};
use cc_bench::table::{f3, Table};
use cc_vector::synth::Profile;

fn main() {
    let scale = cc_bench::scale();
    let nq = cc_bench::queries();
    let mut t = Table::new(
        format!("T1: datasets (scale {scale}, {nq} queries)"),
        &["dataset", "n(paper)", "d", "n(run)", "queries", "meanNN(norm)"],
    );
    for profile in Profile::paper_profiles() {
        let (n_full, d) = profile.shape();
        let w = prepare_workload(profile, scale, nq, 1, 42);
        let nn = mean_nn_distance(&w.data, 30);
        t.row(vec![
            profile.name().to_string(),
            n_full.to_string(),
            d.to_string(),
            w.n().to_string(),
            w.queries.len().to_string(),
            f3(nn),
        ]);
    }
    t.print();
    t.save_csv("t1_datasets");
}

//! **F5 — effect of the false-positive budget β** (the paper's β study).
//!
//! β controls terminating condition T2 (`k + βn` verified candidates)
//! *and* feeds the Hoeffding bound, so a larger β both verifies more
//! candidates (better recall) and slightly shrinks `m`. The sweep
//! reports the trade-off on one dataset; run with `CC_SCALE`/`CC_QUERIES`
//! to vary the setting.

use c2lsh::{Beta, C2lshConfig, DiskIndex};
use cc_bench::eval::evaluate;
use cc_bench::methods::C2lshDisk;
use cc_bench::prep::prepare_workload;
use cc_bench::table::{f1, f3, Table};
use cc_vector::synth::Profile;

fn main() {
    let scale = cc_bench::scale();
    let nq = cc_bench::queries();
    let k = 10;
    let mut t = Table::new(
        format!("F5: effect of beta (k = {k}, scale {scale}, {nq} queries)"),
        &["dataset", "beta_count", "m", "recall", "ratio", "verified", "io"],
    );
    for profile in [Profile::Mnist, Profile::Color] {
        let w = prepare_workload(profile, scale, nq, k, 23);
        for beta_count in [25u64, 50, 100, 200, 400] {
            let cfg = C2lshConfig::builder()
                .bucket_width(2.184)
                .beta(Beta::Count(beta_count))
                .seed(23)
                .build();
            let idx = C2lshDisk(DiskIndex::build(&w.data, &cfg));
            let row = evaluate(&idx, &w, k);
            t.row(vec![
                profile.name().into(),
                beta_count.to_string(),
                idx.0.params().m.to_string(),
                f3(row.recall),
                f3(row.ratio),
                f1(row.verified),
                f1(row.io_reads),
            ]);
        }
        eprintln!("[{} done]", profile.name());
    }
    t.print();
    t.save_csv("f5_effect_of_beta");
}

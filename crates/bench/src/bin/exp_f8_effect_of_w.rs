//! **F8 — effect of the bucket width w** (the paper tunes `w` per
//! dataset; this sweep shows why the ρ-minimizing default is a good
//! one).
//!
//! Sweeps `w` around 2.184 on NN-normalized data and reports the derived
//! `m`, recall, ratio and verified candidates. Too-small `w` collapses
//! `p1` (more tables, noisier counts); too-large `w` collapses the
//! `p1/p2` contrast (windows admit far points).

use c2lsh::{C2lshConfig, C2lshIndex, FullParams};
use cc_bench::eval::evaluate;
use cc_bench::methods::C2lshMem;
use cc_bench::prep::prepare_workload;
use cc_bench::table::{f1, f3, Table};
use cc_vector::synth::Profile;

fn main() {
    let scale = cc_bench::scale();
    let nq = cc_bench::queries();
    let k = 10;
    let mut t = Table::new(
        format!("F8: effect of bucket width w (k = {k}, scale {scale}, {nq} queries)"),
        &["dataset", "w", "rho", "m", "l", "recall", "ratio", "verified", "ms"],
    );
    for profile in [Profile::Mnist, Profile::Color] {
        let w = prepare_workload(profile, scale, nq, k, 47);
        for width in [1.0f64, 1.5, 2.184, 3.0, 4.0, 6.0] {
            let cfg = C2lshConfig::builder().bucket_width(width).seed(47).build();
            let p = FullParams::derive(w.n(), &cfg);
            let idx = C2lshMem(C2lshIndex::build(&w.data, &cfg));
            let row = evaluate(&idx, &w, k);
            t.row(vec![
                profile.name().into(),
                f3(width),
                f3(cc_math::pstable::rho(2.0, width)),
                p.m.to_string(),
                p.l.to_string(),
                f3(row.recall),
                f3(row.ratio),
                f1(row.verified),
                f3(row.time_ms),
            ]);
        }
        eprintln!("[{} done]", profile.name());
    }
    t.print();
    t.save_csv("f8_effect_of_w");
}

//! **A2 — ablation: dynamic collision counting vs static concatenation
//! at an equal hash-function budget.**
//!
//! C2LSH's central claim: m single-function tables with a collision
//! threshold extract far more signal than the same m functions split
//! into K-wise concatenations across L = m/K tables. The ablation gives
//! both frameworks the *same* number of p-stable functions and compares
//! quality and work.

use c2lsh::{C2lshConfig, C2lshIndex};
use cc_baselines::e2lsh::{E2lsh, E2lshConfig};
use cc_bench::eval::evaluate;
use cc_bench::methods::{C2lshMem, E2lshIdx};
use cc_bench::prep::prepare_workload;
use cc_bench::table::{f1, f3, Table};
use cc_vector::synth::Profile;

fn main() {
    let scale = cc_bench::scale();
    let nq = cc_bench::queries();
    let k = 10;
    let mut t = Table::new(
        format!("A2: dynamic counting vs static concatenation, equal hash budget (k = {k})"),
        &["dataset", "framework", "functions", "layout", "recall", "ratio", "verified", "ms"],
    );
    for profile in [Profile::Mnist, Profile::Color] {
        let w = prepare_workload(profile, scale, nq, k, 43);

        // Dynamic counting: the derived m is the budget.
        let cfg = C2lshConfig::builder().bucket_width(2.184).seed(43).build();
        let c2 = C2lshMem(C2lshIndex::build(&w.data, &cfg));
        let m = c2.0.params().m;
        let r = evaluate(&c2, &w, k);
        t.row(vec![
            profile.name().into(),
            "dynamic counting".into(),
            m.to_string(),
            format!("m={m}, l={}", c2.0.params().l),
            f3(r.recall),
            f3(r.ratio),
            f1(r.verified),
            f3(r.time_ms),
        ]);

        // Static concatenation with the same budget m = K × L.
        for kf in [2usize, 4, 8] {
            let l = (m / kf).max(1);
            let e2 = E2lshIdx(E2lsh::build(
                &w.data,
                E2lshConfig { k_funcs: kf, l_tables: l, w: 2.184, seed: 43 },
            ));
            let r = evaluate(&e2, &w, k);
            t.row(vec![
                profile.name().into(),
                "static concat".into(),
                (kf * l).to_string(),
                format!("K={kf}, L={l}"),
                f3(r.recall),
                f3(r.ratio),
                f1(r.verified),
                f3(r.time_ms),
            ]);
        }
        eprintln!("[{} done]", profile.name());
    }
    t.print();
    t.save_csv("a2_counting_vs_concat");
}

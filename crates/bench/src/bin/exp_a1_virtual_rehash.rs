//! **A1 — ablation: virtual rehashing vs physical per-radius indexes.**
//!
//! C2LSH's virtual rehashing answers every radius from one physical
//! index; the rigorous-LSH alternative builds one index per radius.
//! The ablation holds quality roughly fixed and compares index size and
//! build time — the paper's argument for the design choice.

use cc_baselines::e2lsh::E2lshConfig;
use cc_baselines::rigorous::{RigorousConfig, RigorousLsh};
use cc_bench::eval::evaluate;
use cc_bench::methods::{defaults, RigorousIdx};
use cc_bench::prep::prepare_workload;
use cc_bench::table::{f1, f3, Table};
use cc_vector::synth::Profile;
use std::time::Instant;

fn main() {
    let scale = cc_bench::scale();
    let nq = cc_bench::queries();
    let k = 10;
    let mut t = Table::new(
        format!("A1: virtual rehashing vs physical per-radius indexes (k = {k}, scale {scale})"),
        &["dataset", "method", "physical_indexes", "MiB", "build_s", "recall", "ratio"],
    );
    for profile in [Profile::Mnist, Profile::Color] {
        let w = prepare_workload(profile, scale, nq, k, 41);

        let t0 = Instant::now();
        let c2 = defaults::c2lsh(&w.data, 41);
        let build_c2 = t0.elapsed().as_secs_f64();
        let r = evaluate(&c2, &w, k);
        t.row(vec![
            profile.name().into(),
            "C2LSH (virtual)".into(),
            "1".into(),
            f1(c2.0.size_bytes() as f64 / (1024.0 * 1024.0)),
            f3(build_c2),
            f3(r.recall),
            f3(r.ratio),
        ]);

        for levels in [4u32, 8, 12] {
            let t0 = Instant::now();
            let rig = RigorousIdx(RigorousLsh::build(
                &w.data,
                RigorousConfig {
                    base: E2lshConfig { k_funcs: 8, l_tables: 48, w: 2.184, seed: 41 },
                    c: 2,
                    levels,
                },
            ));
            let build = t0.elapsed().as_secs_f64();
            let r = evaluate(&rig, &w, k);
            t.row(vec![
                profile.name().into(),
                "Rigorous (physical)".into(),
                levels.to_string(),
                f1(rig.0.size_bytes() as f64 / (1024.0 * 1024.0)),
                f3(build),
                f3(r.recall),
                f3(r.ratio),
            ]);
        }
        eprintln!("[{} done]", profile.name());
    }
    t.print();
    t.save_csv("a1_virtual_rehash");
}

//! A uniform facade over every method in the evaluation.
//!
//! The experiment binaries talk to [`AnnIndex`] only, so each figure's
//! code is a loop over methods instead of per-method plumbing. Every
//! method reports its cost as a [`QueryStats`] — the engine-backed
//! methods return theirs natively (with wall-clock timing enabled);
//! baseline methods have their [`BaselineStats`] lifted into the same
//! shape — so the harness aggregates everything through
//! [`c2lsh::BatchStats`].

use c2lsh::engine::SearchOptions;
use c2lsh::QueryStats;
use cc_baselines::BaselineStats;
use cc_vector::dataset::Dataset;
use cc_vector::gt::Neighbor;

/// Options the engine-backed wrappers query with: wall-clock timing on,
/// per-round breakdowns off (the harness reports means, not rounds).
fn timed() -> SearchOptions {
    SearchOptions { timing: true, ..Default::default() }
}

/// Lift a baseline's counters into the uniform [`QueryStats`] shape
/// (no rehashing rounds or termination reason to report; the harness
/// stamps wall-clock time itself for these).
fn lift(s: &BaselineStats) -> QueryStats {
    QueryStats {
        candidates_verified: s.candidates_verified,
        candidates_abandoned: s.candidates_abandoned,
        io: s.io,
        ..QueryStats::new()
    }
}

/// Uniform query interface.
pub trait AnnIndex {
    /// Display name used in tables.
    fn name(&self) -> &str;
    /// c-k-ANN query with cost counters.
    fn query(&self, q: &[f32], k: usize) -> (Vec<Neighbor>, QueryStats);
    /// Index size in bytes (excluding the raw data, which all methods
    /// share).
    fn size_bytes(&self) -> usize;
}

/// C2LSH, in-memory backend.
pub struct C2lshMem<'d>(pub c2lsh::C2lshIndex<'d>);

impl AnnIndex for C2lshMem<'_> {
    fn name(&self) -> &str {
        "C2LSH"
    }
    fn query(&self, q: &[f32], k: usize) -> (Vec<Neighbor>, QueryStats) {
        self.0.query_with(q, k, &timed())
    }
    fn size_bytes(&self) -> usize {
        self.0.size_bytes()
    }
}

/// C2LSH, out-of-core backend: compressed postings + vectors on disk,
/// reads through the pinned buffer pool. Owns its page file (scratch,
/// deleted on drop).
pub struct C2lshPaged(pub c2lsh::PagedStore);

impl AnnIndex for C2lshPaged {
    fn name(&self) -> &str {
        "C2LSH(paged)"
    }
    fn query(&self, q: &[f32], k: usize) -> (Vec<Neighbor>, QueryStats) {
        self.0.query_with(q, k, &timed())
    }
    /// Compressed posting bytes — the on-disk analogue of the other
    /// methods' table bytes (the shared raw-data segment is excluded).
    fn size_bytes(&self) -> usize {
        self.0.posting_bytes() as usize
    }
}

/// C2LSH, paged backend with exact I/O accounting.
pub struct C2lshDisk<'d>(pub c2lsh::DiskIndex<'d>);

impl AnnIndex for C2lshDisk<'_> {
    fn name(&self) -> &str {
        "C2LSH(disk)"
    }
    fn query(&self, q: &[f32], k: usize) -> (Vec<Neighbor>, QueryStats) {
        self.0.query_with(q, k, &timed())
    }
    fn size_bytes(&self) -> usize {
        self.0.size_bytes()
    }
}

/// C2LSH, updatable backend (owns its vectors).
pub struct C2lshDyn(pub c2lsh::DynamicIndex);

impl AnnIndex for C2lshDyn {
    fn name(&self) -> &str {
        "C2LSH(dyn)"
    }
    fn query(&self, q: &[f32], k: usize) -> (Vec<Neighbor>, QueryStats) {
        self.0.query_with(q, k, &timed())
    }
    fn size_bytes(&self) -> usize {
        0 // in-memory maps; not part of the paper's index-size metric
    }
}

/// QALSH over B+-trees.
pub struct QalshIdx<'d>(pub qalsh::Qalsh<'d>);

impl AnnIndex for QalshIdx<'_> {
    fn name(&self) -> &str {
        "QALSH"
    }
    fn query(&self, q: &[f32], k: usize) -> (Vec<Neighbor>, QueryStats) {
        self.0.query_with(q, k, &timed())
    }
    fn size_bytes(&self) -> usize {
        self.0.size_bytes()
    }
}

/// E2LSH (static concatenation).
pub struct E2lshIdx<'d>(pub cc_baselines::e2lsh::E2lsh<'d>);

impl AnnIndex for E2lshIdx<'_> {
    fn name(&self) -> &str {
        "E2LSH"
    }
    fn query(&self, q: &[f32], k: usize) -> (Vec<Neighbor>, QueryStats) {
        let (nn, s) = self.0.query(q, k);
        (nn, lift(&s))
    }
    fn size_bytes(&self) -> usize {
        self.0.size_bytes()
    }
}

/// Rigorous-LSH (per-radius E2LSH indexes).
pub struct RigorousIdx<'d>(pub cc_baselines::rigorous::RigorousLsh<'d>);

impl AnnIndex for RigorousIdx<'_> {
    fn name(&self) -> &str {
        "RigorousLSH"
    }
    fn query(&self, q: &[f32], k: usize) -> (Vec<Neighbor>, QueryStats) {
        let (nn, s) = self.0.query(q, k);
        (nn, lift(&s))
    }
    fn size_bytes(&self) -> usize {
        self.0.size_bytes()
    }
}

/// LSB-forest.
pub struct LsbIdx<'d>(pub cc_baselines::lsb::LsbForest<'d>);

impl AnnIndex for LsbIdx<'_> {
    fn name(&self) -> &str {
        "LSB-forest"
    }
    fn query(&self, q: &[f32], k: usize) -> (Vec<Neighbor>, QueryStats) {
        let (nn, s) = self.0.query(q, k);
        (nn, lift(&s))
    }
    fn size_bytes(&self) -> usize {
        self.0.size_bytes()
    }
}

/// Multi-Probe LSH.
pub struct MultiProbeIdx<'d>(pub cc_baselines::multiprobe::MultiProbeLsh<'d>);

impl AnnIndex for MultiProbeIdx<'_> {
    fn name(&self) -> &str {
        "MultiProbe"
    }
    fn query(&self, q: &[f32], k: usize) -> (Vec<Neighbor>, QueryStats) {
        let (nn, s) = self.0.query(q, k);
        (nn, lift(&s))
    }
    fn size_bytes(&self) -> usize {
        self.0.size_bytes()
    }
}

/// Exact linear scan.
pub struct LinearIdx<'d>(pub cc_baselines::linear::LinearScan<'d>);

impl AnnIndex for LinearIdx<'_> {
    fn name(&self) -> &str {
        "LinearScan"
    }
    fn query(&self, q: &[f32], k: usize) -> (Vec<Neighbor>, QueryStats) {
        let (nn, s) = self.0.query(q, k);
        (nn, lift(&s))
    }
    fn size_bytes(&self) -> usize {
        self.0.size_bytes()
    }
}

/// Default-parameter constructors used by most experiments; the seeds are
/// fixed so every binary is reproducible.
pub mod defaults {
    use super::*;
    use cc_baselines::e2lsh::E2lshConfig;
    use cc_baselines::lsb::LsbConfig;

    /// C2LSH with the paper's defaults on NN-normalized data.
    pub fn c2lsh(data: &Dataset, seed: u64) -> C2lshMem<'_> {
        let cfg = c2lsh::C2lshConfig::builder().bucket_width(2.184).seed(seed).build();
        C2lshMem(c2lsh::C2lshIndex::build(data, &cfg))
    }

    /// C2LSH out-of-core backend, same parameters; the page file lands
    /// in a scratch directory and the buffer pool is capped at ~10% of
    /// the file so the smoke run actually exercises eviction.
    pub fn c2lsh_paged(data: &Dataset, seed: u64) -> C2lshPaged {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let cfg = c2lsh::C2lshConfig::builder().bucket_width(2.184).seed(seed).build();
        let path = std::env::temp_dir().join(format!(
            "cc-paged-bench-{}-{}.ccpg",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let store = c2lsh::PagedStore::build(data, &cfg, &path, 1)
            .expect("paged index build failed")
            .delete_file_on_drop();
        let pages = (store.file_bytes() as usize / cc_storage::PAGE_SIZE / 10).max(64);
        let mut store = store;
        store.set_pool_pages(pages);
        C2lshPaged(store)
    }

    /// C2LSH disk backend, same parameters.
    pub fn c2lsh_disk(data: &Dataset, seed: u64) -> C2lshDisk<'_> {
        let cfg = c2lsh::C2lshConfig::builder().bucket_width(2.184).seed(seed).build();
        C2lshDisk(c2lsh::DiskIndex::build(data, &cfg))
    }

    /// C2LSH dynamic backend, same parameters (bulk-loaded).
    pub fn c2lsh_dyn(data: &Dataset, seed: u64) -> C2lshDyn {
        let cfg = c2lsh::C2lshConfig::builder().bucket_width(2.184).seed(seed).build();
        C2lshDyn(c2lsh::DynamicIndex::from_dataset(data, &cfg))
    }

    /// QALSH at its ρ-optimal width.
    pub fn qalsh(data: &Dataset, seed: u64) -> QalshIdx<'_> {
        QalshIdx(qalsh::Qalsh::build(data, qalsh::QalshConfig { seed, ..Default::default() }))
    }

    /// E2LSH sized for decent recall on NN-normalized data.
    pub fn e2lsh(data: &Dataset, seed: u64) -> E2lshIdx<'_> {
        let cfg = E2lshConfig { k_funcs: 8, l_tables: 64, w: 2.184, seed };
        E2lshIdx(cc_baselines::e2lsh::E2lsh::build(data, cfg))
    }

    /// LSB-forest with its quality stop off (recall mode) and a budget in
    /// the same ballpark as C2LSH's `k + βn`.
    pub fn lsb(data: &Dataset, seed: u64) -> LsbIdx<'_> {
        let cfg = LsbConfig {
            k_funcs: 8,
            l_trees: 24,
            u_bits: 16,
            w: 1.5,
            c: 2,
            budget: 200,
            quality_stop: false,
            seed,
        };
        LsbIdx(cc_baselines::lsb::LsbForest::build(data, cfg))
    }

    /// Multi-Probe LSH: few tables, many probes.
    pub fn multiprobe(data: &Dataset, seed: u64) -> MultiProbeIdx<'_> {
        let cfg = cc_baselines::multiprobe::MultiProbeConfig {
            k_funcs: 8,
            l_tables: 8,
            w: 2.184,
            probes: 32,
            seed,
        };
        MultiProbeIdx(cc_baselines::multiprobe::MultiProbeLsh::build(data, cfg))
    }

    /// Linear scan.
    pub fn linear(data: &Dataset) -> LinearIdx<'_> {
        LinearIdx(cc_baselines::linear::LinearScan::new(data))
    }
}

//! Query-set evaluation: run a method over a workload, aggregate the
//! paper's metrics.

use crate::methods::AnnIndex;
use cc_math::stats::mean;
use cc_vector::metrics::{overall_ratio, recall};
use cc_vector::workload::Workload;
use std::time::Instant;

/// Aggregated result of one (method, workload, k) cell.
#[derive(Debug, Clone)]
pub struct EvalRow {
    /// Method display name.
    pub method: String,
    /// Neighbors requested.
    pub k: usize,
    /// Mean recall over the query set.
    pub recall: f64,
    /// Mean overall ratio over the query set.
    pub ratio: f64,
    /// Mean verified candidates per query.
    pub verified: f64,
    /// Mean page reads per query.
    pub io_reads: f64,
    /// Mean wall-clock query time in milliseconds.
    pub time_ms: f64,
    /// Index size in MiB.
    pub index_mib: f64,
}

/// Run every workload query at depth `k` through `index`.
pub fn evaluate(index: &dyn AnnIndex, w: &Workload, k: usize) -> EvalRow {
    let truth = w.truth_at(k);
    let mut recalls = Vec::with_capacity(w.queries.len());
    let mut ratios = Vec::with_capacity(w.queries.len());
    let mut verified = Vec::with_capacity(w.queries.len());
    let mut ios = Vec::with_capacity(w.queries.len());
    let mut times = Vec::with_capacity(w.queries.len());
    for (qi, q) in w.queries.iter().enumerate() {
        let t0 = Instant::now();
        let (nn, cost) = index.query(q, k);
        times.push(t0.elapsed().as_secs_f64() * 1e3);
        recalls.push(recall(&nn, &truth[qi]));
        ratios.push(overall_ratio(&nn, &truth[qi]));
        verified.push(cost.verified as f64);
        ios.push(cost.io_reads as f64);
    }
    EvalRow {
        method: index.name().to_string(),
        k,
        recall: mean(&recalls),
        ratio: mean(&ratios),
        verified: mean(&verified),
        io_reads: mean(&ios),
        time_ms: mean(&times),
        index_mib: index.size_bytes() as f64 / (1024.0 * 1024.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::defaults;
    use cc_vector::synth::Profile;

    #[test]
    fn linear_scan_is_exact() {
        let w = Workload::from_profile(Profile::Color, 0.01, 5, 10, 1);
        let idx = defaults::linear(&w.data);
        let row = evaluate(&idx, &w, 10);
        assert_eq!(row.recall, 1.0);
        assert!((row.ratio - 1.0).abs() < 1e-12);
        assert_eq!(row.method, "LinearScan");
        assert_eq!(row.verified, w.n() as f64);
    }
}

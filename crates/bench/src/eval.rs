//! Query-set evaluation: run a method over a workload, aggregate the
//! paper's metrics.
//!
//! Cost counters are folded through [`BatchStats`] — the same
//! aggregation the engine's batch executor produces — so the harness
//! never hand-sums counters; only the quality metrics (recall, ratio),
//! which need per-query ground truth, keep their own accumulators.

use crate::methods::AnnIndex;
use c2lsh::BatchStats;
use cc_math::stats::mean;
use cc_vector::metrics::{overall_ratio, recall};
use cc_vector::workload::Workload;
use std::time::Instant;

/// Aggregated result of one (method, workload, k) cell.
#[derive(Debug, Clone)]
pub struct EvalRow {
    /// Method display name.
    pub method: String,
    /// Neighbors requested.
    pub k: usize,
    /// Mean recall over the query set.
    pub recall: f64,
    /// Mean overall ratio over the query set.
    pub ratio: f64,
    /// Mean verified candidates per query.
    pub verified: f64,
    /// Mean page reads per query.
    pub io_reads: f64,
    /// Mean wall-clock query time in milliseconds.
    pub time_ms: f64,
    /// Index size in MiB.
    pub index_mib: f64,
}

/// Run every workload query at depth `k` through `index`.
pub fn evaluate(index: &dyn AnnIndex, w: &Workload, k: usize) -> EvalRow {
    let (row, _) = evaluate_with_stats(index, w, k);
    row
}

/// [`evaluate`], also returning the aggregated [`BatchStats`] for
/// callers that want rounds / termination tallies beyond the row.
pub fn evaluate_with_stats(index: &dyn AnnIndex, w: &Workload, k: usize) -> (EvalRow, BatchStats) {
    let (row, agg, _) = evaluate_detailed(index, w, k);
    (row, agg)
}

/// [`evaluate_with_stats`], additionally returning the raw per-query
/// wall-clock latencies in nanoseconds (workload order) so callers can
/// compute percentiles — the `bench run` harness reports p50/p95/p99.
pub fn evaluate_detailed(
    index: &dyn AnnIndex,
    w: &Workload,
    k: usize,
) -> (EvalRow, BatchStats, Vec<u64>) {
    let truth = w.truth_at(k);
    let mut recalls = Vec::with_capacity(w.queries.len());
    let mut ratios = Vec::with_capacity(w.queries.len());
    let mut latencies_ns = Vec::with_capacity(w.queries.len());
    let mut agg = BatchStats::default();
    for (qi, q) in w.queries.iter().enumerate() {
        let t0 = Instant::now();
        let (nn, mut stats) = index.query(q, k);
        let wall = t0.elapsed().as_nanos() as u64;
        if stats.elapsed_nanos == 0 {
            // Baselines don't self-time; stamp the harness measurement.
            stats.elapsed_nanos = wall;
        }
        // Percentiles always use the harness clock so engine-backed and
        // baseline methods are measured identically.
        latencies_ns.push(wall);
        recalls.push(recall(&nn, &truth[qi]));
        ratios.push(overall_ratio(&nn, &truth[qi]));
        agg.absorb(&stats);
    }
    let row = EvalRow {
        method: index.name().to_string(),
        k,
        recall: mean(&recalls),
        ratio: mean(&ratios),
        verified: agg.mean_verified(),
        io_reads: agg.mean_io_reads(),
        time_ms: agg.mean_time_ms(),
        index_mib: index.size_bytes() as f64 / (1024.0 * 1024.0),
    };
    (row, agg, latencies_ns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::defaults;
    use cc_vector::synth::Profile;

    #[test]
    fn linear_scan_is_exact() {
        let w = Workload::from_profile(Profile::Color, 0.01, 5, 10, 1);
        let idx = defaults::linear(&w.data);
        let (row, agg) = evaluate_with_stats(&idx, &w, 10);
        assert_eq!(row.recall, 1.0);
        assert!((row.ratio - 1.0).abs() < 1e-12);
        assert_eq!(row.method, "LinearScan");
        assert_eq!(row.verified, w.n() as f64);
        assert_eq!(agg.queries, w.queries.len());
        assert!(row.time_ms > 0.0, "harness stamps wall time for baselines");
    }

    #[test]
    fn engine_methods_report_rounds_and_termination() {
        let w = Workload::from_profile(Profile::Color, 0.02, 5, 10, 2);
        let idx = defaults::c2lsh(&w.data, 7);
        let (row, agg) = evaluate_with_stats(&idx, &w, 10);
        assert_eq!(agg.queries, w.queries.len());
        assert!(agg.rounds >= agg.queries as u64, "at least one round per query");
        assert_eq!(agg.t1 + agg.t2 + agg.exhausted, agg.queries);
        assert!(row.time_ms > 0.0, "engine self-times with the timing flag");
    }

    #[test]
    fn detailed_returns_one_latency_per_query() {
        let w = Workload::from_profile(Profile::Color, 0.01, 5, 10, 3);
        let idx = defaults::linear(&w.data);
        let (_, _, lat) = evaluate_detailed(&idx, &w, 10);
        assert_eq!(lat.len(), w.queries.len());
        assert!(lat.iter().all(|&ns| ns > 0), "harness clock always advances");
    }
}

//! Workload preparation with nearest-neighbor-scale normalization.
//!
//! The C2LSH theory is stated for a base radius `R = 1`; the paper
//! normalizes each dataset so the relevant distance scale is order one.
//! We reproduce that protocol: estimate the mean 1-NN distance on a
//! sample of the generated data, rescale every coordinate by its inverse,
//! and only then compute ground truth. All methods see the same
//! normalized data, so comparisons are unaffected and the paper-default
//! widths (`w = 2.184` for C2LSH at `c = 2`, `w ≈ 2.719` for QALSH)
//! apply verbatim.

use cc_vector::synth::Profile;
use cc_vector::workload::Workload;

pub use cc_vector::scale::{mean_nn_distance, rescale};

/// Generate a profile at `scale`, normalize to unit mean 1-NN distance,
/// and package with ground truth.
pub fn prepare_workload(
    profile: Profile,
    scale: f64,
    n_queries: usize,
    gt_k: usize,
    seed: u64,
) -> Workload {
    let (base, queries) = profile.generate_scaled(scale, n_queries, seed);
    let unit = mean_nn_distance(&base, 50);
    let factor = 1.0 / unit;
    let base = rescale(&base, factor);
    let queries = rescale(&queries, factor);
    Workload::from_parts(profile.name(), base, queries, gt_k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_vector::dataset::Dataset;

    #[test]
    fn normalization_brings_nn_scale_to_one() {
        let w = prepare_workload(Profile::Color, 0.02, 4, 5, 3);
        let unit = mean_nn_distance(&w.data, 40);
        assert!((0.5..2.0).contains(&unit), "normalized mean NN distance {unit} not near 1");
    }

    #[test]
    fn rescale_scales_distances_linearly() {
        let d = Dataset::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0]]);
        let r = rescale(&d, 0.5);
        let dist = cc_vector::dist::euclidean(r.get(0), r.get(1));
        assert!((dist - 2.5).abs() < 1e-6);
    }

    #[test]
    fn mean_nn_ignores_self() {
        let d = Dataset::from_rows(&[vec![0.0], vec![1.0], vec![3.0]]);
        let m = mean_nn_distance(&d, 3);
        // NN distances: 1, 1, 2 -> mean 4/3.
        assert!((m - 4.0 / 3.0).abs() < 1e-6, "m = {m}");
    }
}

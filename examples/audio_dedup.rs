//! Near-duplicate audio detection — the scenario behind the paper's
//! Audio dataset (54,387 × 192 audio features).
//!
//! A deduplication job must decide, for each incoming clip, whether the
//! library already contains a recording within distance `R` — exactly
//! the `(R, c)`-near-neighbor decision problem that C2LSH solves. The
//! example plants true duplicates (same clip, light noise) and unrelated
//! clips, runs `query_one` on each, and applies the decision rule
//! `dist ≤ c·R`.
//!
//! It also contrasts C2LSH with QALSH on the same task.
//!
//! ```text
//! cargo run --release --example audio_dedup
//! ```

use c2lsh::{C2lshConfig, C2lshIndex};
use cc_vector::synth::Profile;
use qalsh::{Qalsh, QalshConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let (library, fresh) = Profile::Audio.generate_scaled(0.2, 40, 5);
    println!("audio library: {} clips, {} features", library.len(), library.dim());

    // Duplicate threshold: measured against the library's own scale.
    let r = 0.15; // feature-space radius that counts as "same recording"
    let c = 2u32;

    let c2_cfg = C2lshConfig::builder()
        .approximation_ratio(c)
        .base_radius(r) // the theory's R = 1 maps to this distance
        .bucket_width(r * 2.184) // width scales with the base radius
        .seed(11)
        .build();
    let c2 = C2lshIndex::build(&library, &c2_cfg);
    let qa = Qalsh::build(
        &library,
        QalshConfig { c, w: r * 2.719, base_radius: r, seed: 11, ..Default::default() },
    );

    let mut rng = StdRng::seed_from_u64(123);
    let mut normal = cc_vector::gen::NormalSampler::new();

    // 20 true duplicates (library clip + light noise), 20 fresh clips.
    let mut tp_c2 = 0;
    let mut fp_c2 = 0;
    let mut tp_qa = 0;
    let mut fp_qa = 0;
    for trial in 0..40 {
        let (clip, is_dup): (Vec<f32>, bool) = if trial < 20 {
            let idx = rng.gen_range(0..library.len());
            let noisy: Vec<f32> = library
                .get(idx)
                .iter()
                .map(|&x| (x as f64 + 0.02 * r * normal.sample(&mut rng)) as f32)
                .collect();
            (noisy, true)
        } else {
            (fresh.get(trial - 20).to_vec(), false)
        };

        let dup_c2 = c2.query_one(&clip).0.map(|n| n.dist <= c as f64 * r).unwrap_or(false);
        let dup_qa = qa.query(&clip, 1).0.first().map(|n| n.dist <= c as f64 * r).unwrap_or(false);
        if is_dup {
            tp_c2 += dup_c2 as i32;
            tp_qa += dup_qa as i32;
        } else {
            fp_c2 += dup_c2 as i32;
            fp_qa += dup_qa as i32;
        }
    }

    println!("\n(R, c)-NN duplicate decision, R = {r}, c = {c}:");
    println!("  C2LSH: {tp_c2}/20 duplicates caught, {fp_c2}/20 false alarms");
    println!("  QALSH: {tp_qa}/20 duplicates caught, {fp_qa}/20 false alarms");
    println!(
        "\nindex sizes: C2LSH {:.1} MiB (m = {}), QALSH {:.1} MiB (m = {})",
        c2.size_bytes() as f64 / (1024.0 * 1024.0),
        c2.params().m,
        qa.size_bytes() as f64 / (1024.0 * 1024.0),
        qa.num_trees()
    );
}

//! Filtered search quickstart: per-point metadata, predicates inside
//! the collision-counting loop, and named collections over the wire.
//!
//! ```text
//! cargo run --release --example filtered_search
//! ```
//!
//! Part 1 attaches a `PointMeta` (u64 tag bitset + u32 label) to every
//! indexed point and runs the same query unfiltered and with a
//! predicate. The predicate is evaluated when a point's collision
//! count crosses the threshold — *before* the distance computation —
//! so non-matching points are rejected without ever being verified.
//!
//! Part 2 does the same against a live `cc-service`: a named
//! collection, metadata-bearing inserts, and a `QueryRequest` carrying
//! the filter.

use c2lsh::engine::SearchOptions;
use c2lsh::{C2lshConfig, C2lshIndex, DynamicIndex, MutableIndex, PointMeta, Predicate};
use cc_service::{Client, QueryRequest, ServiceConfig};
use cc_vector::gen::{generate, Distribution};
use std::net::TcpListener;

const DIM: usize = 32;
const N: usize = 8_000;

/// Pretend catalogue metadata: label = category (0..=4), tag bit i%6 =
/// a feature flag. Both moduli are coprime to the generator's cluster
/// count, so every cluster mixes all categories.
fn meta(i: usize) -> PointMeta {
    PointMeta::new(1 << (i % 6), (i % 5) as u32)
}

fn main() {
    let data = generate(
        Distribution::GaussianMixture { clusters: 16, spread: 0.02, scale: 10.0 },
        N,
        DIM,
        11,
    );
    let config = C2lshConfig::builder().bucket_width(1.0).seed(11).build();

    // ----- Part 1: the library API ---------------------------------
    let metas: Vec<PointMeta> = (0..N).map(meta).collect();
    let index = C2lshIndex::build(&data, &config).with_meta(metas);

    // Category 2, restricted to points with feature bit 0 or 3 set.
    let predicate = Predicate::label(2).and_tag_any((1 << 0) | (1 << 3));
    let q = data.get(7);

    let (plain, plain_stats) = index.query(q, 10);
    let opts = SearchOptions { filter: Some(predicate), ..Default::default() };
    let (filtered, filtered_stats) = index.query_with(q, 10, &opts);

    println!("unfiltered top-3:");
    for n in plain.iter().take(3) {
        println!("  id {:>4}  dist {:.4}", n.id, n.dist);
    }
    println!("filtered top-3 (label == 2 && tag & 0b1001 != 0):");
    for n in filtered.iter().take(3) {
        println!("  id {:>4}  dist {:.4}  (id % 5 == {})", n.id, n.dist, n.id % 5);
    }
    println!(
        "cost: unfiltered verified {} candidates; filtered verified {} and rejected {} \
         by predicate before any distance computation",
        plain_stats.candidates_verified,
        filtered_stats.candidates_verified,
        filtered_stats.candidates_filtered,
    );

    // ----- Part 2: collections over the wire -----------------------
    let engine = MutableIndex::ephemeral(DynamicIndex::new(DIM, N, &config));
    let service = ServiceConfig::default();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");

    let (engine, service, data) = (&engine, &service, &data);
    crossbeam::scope(move |s| {
        s.spawn(move |_| cc_service::serve(engine, listener, service).unwrap());

        let mut client = Client::connect(addr).expect("connect");
        client.create_collection("catalogue", DIM as u32).expect("create");
        for (i, v) in data.iter().take(2_000).enumerate() {
            let m = meta(i);
            client.insert_with_meta(Some("catalogue"), v, m.tag, m.label).expect("insert");
        }
        for info in client.list_collections().expect("list") {
            println!("collection {:?}: {} objects in R^{}", info.name, info.objects, info.dim);
        }

        let result = client
            .search_result(
                &QueryRequest::new(data.get(7).to_vec())
                    .k(5)
                    .collection("catalogue")
                    .filter(Predicate::label(2))
                    .with_stats(),
            )
            .expect("filtered query");
        println!("served top-{} from the collection, label == 2 only:", result.neighbors.len());
        for n in &result.neighbors {
            println!("  id {:>4}  dist {:.4}", n.id, n.dist);
        }
        if let Some(cost) = result.cost {
            println!(
                "server-side cost: {} verified, {} rejected by the predicate",
                cost.verified, cost.filtered
            );
        }

        client.shutdown().expect("shutdown");
    })
    .unwrap();
}

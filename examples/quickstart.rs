//! Quickstart: build a C2LSH index and run c-k-ANN queries.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use c2lsh::{C2lshConfig, C2lshIndex};
use cc_vector::gen::{generate, Distribution};
use cc_vector::gt::knn_linear;

fn main() {
    // 1. Some data: 10,000 clustered vectors in R^64.
    let data = generate(
        Distribution::GaussianMixture { clusters: 32, spread: 0.02, scale: 10.0 },
        10_000,
        64,
        42,
    );
    println!("dataset: {} vectors, {} dimensions", data.len(), data.dim());

    // 2. Configure. Only a handful of knobs exist; everything else
    //    (number of hash tables m, collision threshold l) is derived
    //    from the theory. `bucket_width` is in data units — here the
    //    within-cluster scale is ~1, so the default-ish 1.0 works well.
    let config = C2lshConfig::builder()
        .approximation_ratio(2) // c
        .bucket_width(1.0) // w
        .seed(7)
        .build();

    // 3. Build the index.
    let index = C2lshIndex::build(&data, &config);
    let p = index.params();
    println!(
        "derived parameters: m = {} hash tables, collision threshold l = {} (alpha* = {:.3})",
        p.m, p.l, p.derived.alpha
    );
    println!("index size: {:.1} MiB", index.size_bytes() as f64 / (1024.0 * 1024.0));

    // 4. Query: top-10 approximate nearest neighbors of a held-out point.
    let query = generate(
        Distribution::GaussianMixture { clusters: 32, spread: 0.02, scale: 10.0 },
        10_001,
        64,
        42,
    );
    let q = query.get(10_000);
    let (neighbors, stats) = index.query(q, 10);

    println!("\ntop-10 approximate neighbors:");
    for (rank, n) in neighbors.iter().enumerate() {
        println!("  #{:<2} id {:>5}  dist {:.4}", rank + 1, n.id, n.dist);
    }
    println!(
        "\nquery cost: {} rounds, {} collisions counted, {} candidates verified ({}x fewer \
         distance computations than a linear scan)",
        stats.rounds,
        stats.collisions_counted,
        stats.candidates_verified,
        data.len() / stats.candidates_verified.max(1)
    );

    // 5. Sanity check against the exact answer.
    let exact = knn_linear(&data, q, 10);
    let hits = neighbors.iter().filter(|n| exact.iter().any(|e| e.id == n.id)).count();
    println!("recall vs exact 10-NN: {}/10", hits);
}

//! Image search by color histogram — the scenario behind the paper's
//! Color dataset (Corel color histograms, 68,040 × 32).
//!
//! Builds the Color profile at a reduced scale, indexes it with C2LSH,
//! then simulates a user searching with *noisy* versions of database
//! images (re-encoded / slightly edited pictures): the query is an
//! existing histogram plus small perturbations, and the search should
//! surface the original among the top results.
//!
//! ```text
//! cargo run --release --example image_search
//! ```

use c2lsh::{C2lshConfig, C2lshIndex};
use cc_vector::dataset::Dataset;
use cc_vector::synth::Profile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let (data, _) = Profile::Color.generate_scaled(0.2, 0, 1);
    println!("color-histogram library: {} images, {}-bin histograms", data.len(), data.dim());

    // Tell the index the data's real distance scale: histograms live at
    // a tiny scale, so estimate the typical 1-NN distance and hand it to
    // `base_radius` with a matching bucket width. (Alternative: rescale
    // the data itself with `cc_vector::scale::normalize_to_unit_nn`.)
    let nn_scale = cc_vector::scale::mean_nn_distance(&data, 50);
    println!("estimated 1-NN distance scale: {nn_scale:.4}");
    let config =
        C2lshConfig::builder().base_radius(nn_scale).bucket_width(2.184 * nn_scale).seed(3).build();
    let index = C2lshIndex::build(&data, &config);
    println!(
        "index: m = {} tables, {:.1} MiB\n",
        index.params().m,
        index.size_bytes() as f64 / (1024.0 * 1024.0)
    );

    // Simulate 10 "edited image" queries: pick an image, jitter bins.
    let mut rng = StdRng::seed_from_u64(77);
    let mut found = 0;
    for trial in 0..10 {
        let original = rng.gen_range(0..data.len());
        let noisy = perturb(&data, original, 0.002, &mut rng);
        let (results, stats) = index.query(&noisy, 5);
        let hit = results.iter().position(|n| n.id as usize == original);
        match hit {
            Some(rank) => {
                found += 1;
                println!(
                    "query {trial}: original image {original} found at rank {} \
                     ({} candidates verified)",
                    rank + 1,
                    stats.candidates_verified
                );
            }
            None => println!("query {trial}: original image {original} NOT in top-5"),
        }
    }
    println!("\nnear-duplicate hit rate: {found}/10");
}

/// Add Gaussian jitter to every histogram bin of image `idx`.
fn perturb(data: &Dataset, idx: usize, sigma: f64, rng: &mut StdRng) -> Vec<f32> {
    let mut normal = cc_vector::gen::NormalSampler::new();
    data.get(idx).iter().map(|&x| (x as f64 + sigma * normal.sample(rng)) as f32).collect()
}

//! Parameter explorer: see how the theory turns `(c, w, δ, β, n)` into
//! the index shape `(p1, p2, α*, m, l)`.
//!
//! Useful before deploying: pick the knobs, read off the index size and
//! verification budget the theory implies.
//!
//! ```text
//! cargo run --release --example parameter_explorer
//! ```

use c2lsh::{Beta, C2lshConfig, FullParams};
use cc_math::pstable::{optimal_width, rho};

fn main() {
    println!("rho-minimizing bucket widths for the p-stable family:");
    for c in [2u32, 3, 4] {
        let w = optimal_width(c as f64, 0.1, 20.0);
        println!("  c = {c}: w* = {:.3} (rho = {:.3})", w, rho(c as f64, w));
    }
    println!("  (QALSH closed form: c = 2 -> w* = {:.3})\n", qalsh::params::optimal_width(2));

    println!("m and l vs dataset size (c = 2, w = 2.184, beta = 100/n):");
    println!("  {:>12} {:>6} {:>6} {:>10}", "n", "m", "l", "index est.");
    for exp in [4u32, 5, 6, 7] {
        let n = 10usize.pow(exp);
        let cfg = C2lshConfig::default();
        let p = FullParams::derive(n, &cfg);
        // 12 bytes per (bucket, oid) entry per table.
        let bytes = p.m * n * 12;
        println!("  {:>12} {:>6} {:>6} {:>9.1}M", n, p.m, p.l, bytes as f64 / (1024.0 * 1024.0));
    }

    println!("\neffect of beta at n = 100,000 (c = 2):");
    println!("  {:>10} {:>6} {:>6} {:>14}", "beta*n", "m", "l", "T2 budget(k=10)");
    for count in [25u64, 50, 100, 200, 400] {
        let cfg = C2lshConfig::builder().beta(Beta::Count(count)).build();
        let p = FullParams::derive(100_000, &cfg);
        println!("  {:>10} {:>6} {:>6} {:>14}", count, p.m, p.l, 10 + p.beta_n);
    }

    println!("\neffect of c at n = 100,000 (w at each c's optimum):");
    println!("  {:>3} {:>8} {:>6} {:>6} {:>8} {:>8}", "c", "w", "m", "l", "p1", "p2");
    for c in [2u32, 3, 4] {
        let w = optimal_width(c as f64, 0.1, 20.0);
        let cfg = C2lshConfig::builder().approximation_ratio(c).bucket_width(w).build();
        let p = FullParams::derive(100_000, &cfg);
        println!(
            "  {:>3} {:>8.3} {:>6} {:>6} {:>8.3} {:>8.3}",
            c, w, p.m, p.l, p.derived.p1, p.derived.p2
        );
    }
}

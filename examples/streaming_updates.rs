//! Streaming updates + index persistence — the operational story.
//!
//! The paper argues C2LSH is update-friendly: every hash table is keyed
//! by a single LSH function, so inserting or deleting an object touches
//! exactly `m` buckets — no compound keys to recompute, no per-radius
//! indexes to maintain. This example runs a rolling window over a
//! stream of vectors with [`c2lsh::DynamicIndex`], then shows the static
//! index's save/load path for deployment snapshots.
//!
//! ```text
//! cargo run --release --example streaming_updates
//! ```

use c2lsh::{C2lshConfig, C2lshIndex, DynamicIndex};
use cc_vector::gen::{generate, Distribution};

fn main() {
    let d = 32;
    let stream = generate(
        Distribution::GaussianMixture { clusters: 24, spread: 0.02, scale: 10.0 },
        6_000,
        d,
        99,
    );
    let config = C2lshConfig::builder().bucket_width(1.0).seed(4).build();

    // --- Part 1: rolling window over a stream -------------------------
    let window = 2_000;
    let mut index = DynamicIndex::new(d, window, &config);
    let mut in_window: Vec<u32> = Vec::new();
    let mut found = 0u32;
    let mut probes = 0u32;
    for i in 0..stream.len() {
        let oid = index.insert(stream.get(i).to_vec());
        in_window.push(oid);
        if in_window.len() > window {
            let evicted = in_window.remove(0);
            assert!(index.delete(evicted));
        }
        // Every 500 arrivals, look up the most recent vector.
        if i % 500 == 499 {
            probes += 1;
            let q = stream.get(i).to_vec();
            let (nn, _) = index.query(&q, 1);
            if nn.first().map(|n| n.dist == 0.0).unwrap_or(false) {
                found += 1;
            }
        }
    }
    println!(
        "rolling window: processed {} arrivals, window {} live, self-lookup hit {}/{}",
        stream.len(),
        index.len(),
        found,
        probes
    );

    // --- Part 2: snapshot a static index to bytes and reload ----------
    let data = stream.slice_rows(0, 3_000);
    let static_idx = C2lshIndex::build(&data, &config);
    let blob = c2lsh::save_index(&static_idx);
    println!(
        "\nsnapshot: serialized index = {:.1} MiB (m = {} tables)",
        blob.len() as f64 / (1024.0 * 1024.0),
        static_idx.params().m
    );
    let reloaded = c2lsh::load_index(&data, &blob).expect("reload");
    let q = data.get(1234);
    let (a, _) = static_idx.query(q, 5);
    let (b, _) = reloaded.query(q, 5);
    assert_eq!(a, b);
    println!("reloaded index answers identically: verified on a sample query");
}
